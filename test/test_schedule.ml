(* The code-motion placement analysis and its independent legality checker:
   range well-formedness on generated programs, identity certification over
   the whole corpus, cross-validation of proposed moves against the checker,
   speculation-safety pins, seeded illegal-placement mutants (each must be
   rejected with its pinned check id), and the opportunity lints. *)

module Placement = Schedule.Placement
module Speculate = Schedule.Speculate

let func_of_src = Workload.Corpus.func_of_src
let safety_str s = Fmt.str "%a" Speculate.pp s

let find_instr f p =
  let found = ref (-1) in
  for i = 0 to Ir.Func.num_instrs f - 1 do
    if !found < 0 && p (Ir.Func.instr f i) then found := i
  done;
  if !found < 0 then Alcotest.fail "expected instruction not found";
  !found

let checks errs = List.sort_uniq compare (List.map (fun d -> d.Check.Diagnostic.check) errs)

(* Every diagnostic the checker emits for [placement]; must be exactly the
   given check ids, and all Error severity. *)
let expect_checks msg f placement expected =
  let errs = Check.Schedule.run ~placement f in
  List.iter
    (fun d ->
      if d.Check.Diagnostic.severity <> Check.Diagnostic.Error then
        Alcotest.failf "%s: non-error diagnostic %s" msg (Check.Diagnostic.to_string d))
    errs;
  Alcotest.(check (list string)) msg expected (checks errs)

(* ------------------------------------------------------------------ *)
(* Range well-formedness                                               *)

(* The legal range is a dominator-tree path through the current block:
   early dominates the block, the block dominates late, and best sits on
   the path at no greater loop depth. Pinned values collapse to the
   current block. *)
let prop_ranges_wellformed =
  QCheck.Test.make ~name:"placement ranges are dominator paths through the def" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"sched" () in
      let pl = Placement.compute f in
      let dom = pl.Placement.dom in
      let ok = ref true in
      for v = 0 to Ir.Func.num_instrs f - 1 do
        let b = Ir.Func.block_of_instr f v in
        if Ir.Func.defines_value (Ir.Func.instr f v) && Analysis.Dom.reachable dom b then begin
          let e = pl.Placement.early.(v)
          and l = pl.Placement.late.(v)
          and bst = pl.Placement.best.(v) in
          if not (Analysis.Dom.dominates dom e b) then ok := false;
          if not (Analysis.Dom.dominates dom b l) then ok := false;
          if not (Analysis.Dom.dominates dom e bst) then ok := false;
          if not (Analysis.Dom.dominates dom bst l) then ok := false;
          if
            Analysis.Loops.depth_at pl.Placement.forest bst
            > Analysis.Loops.depth_at pl.Placement.forest b
          then ok := false;
          if Speculate.is_pinned pl.Placement.safety.(v) && (e <> b || l <> b || bst <> b) then
            ok := false
        end
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Identity certification                                              *)

(* The current placement of every routine in the ten-benchmark suite and
   the hand-written corpus is legal — the checker's baseline guarantee. *)
let test_identity_certifies () =
  List.iter
    (fun ((b : Workload.Suite.benchmark), funcs) ->
      List.iter
        (fun f ->
          match Check.Schedule.run f with
          | [] -> ()
          | errs ->
              Alcotest.failf "%s: identity placement rejected: %s" b.Workload.Suite.name
                (Check.Diagnostic.to_string (List.hd errs)))
        funcs)
    (Workload.Suite.all ~scale:0.1 ());
  List.iter
    (fun (name, src) ->
      match Check.Schedule.run (func_of_src src) with
      | [] -> ()
      | errs ->
          Alcotest.failf "corpus %s: identity placement rejected: %s" name
            (Check.Diagnostic.to_string (List.hd errs)))
    Workload.Corpus.all_named

(* Moves the analysis proposes are accepted by the independent checker.
   Single-value moves are only self-contained when every operand's current
   block still dominates the target (a whole-schedule move could hoist the
   operands too), so we restrict to those — and assert the corpus actually
   exercises some. *)
let test_best_moves_certify () =
  let moved = ref 0 in
  let try_func f =
    let pl = Placement.compute f in
    let dom = pl.Placement.dom in
    for v = 0 to Ir.Func.num_instrs f - 1 do
      let b = Ir.Func.block_of_instr f v in
      let bst = pl.Placement.best.(v) in
      if Placement.hoistable pl v || Placement.sinkable pl v then begin
        let operands_ok = ref true in
        Ir.Func.iter_operands
          (fun o ->
            if not (Analysis.Dom.dominates dom (Ir.Func.block_of_instr f o) bst) then
              operands_ok := false)
          (Ir.Func.instr f v);
        if !operands_ok then begin
          let placement = Check.Schedule.identity f in
          placement.(v) <- bst;
          match Check.Schedule.run ~placement f with
          | [] -> incr moved
          | errs ->
              Alcotest.failf "proposed move of v%d b%d->b%d rejected: %s" v b bst
                (Check.Diagnostic.to_string (List.hd errs))
        end
      end
    done
  in
  List.iter (fun (_, src) -> try_func (func_of_src src)) Workload.Corpus.all_named;
  for seed = 1 to 10 do
    try_func (Workload.Generator.func ~seed ~name:"mv" ())
  done;
  if !moved = 0 then Alcotest.fail "no proposed move was exercised"

(* ------------------------------------------------------------------ *)
(* Speculation safety                                                  *)

let test_speculation_classes () =
  (* A division guarded by its only non-trapping path is pinned behind
     that predicate. *)
  let f = func_of_src "routine f(a, b) { if (b != 0) { return a / b; } return 0; }" in
  let pl = Placement.compute f in
  let d = find_instr f (function Ir.Func.Binop (Ir.Types.Div, _, _) -> true | _ -> false) in
  (match pl.Placement.safety.(d) with
  | Speculate.Pinned (Speculate.May_trap { predicate = Some p }) ->
      Alcotest.(check int) "guarded by the branching entry" 0 p
  | s -> Alcotest.failf "guarded div: expected pinned may-trap, got %s" (safety_str s));
  (* A constant divisor is proven non-trapping from the interval facts. *)
  let f = func_of_src "routine f(a) { return a / 7; }" in
  let pl = Placement.compute f in
  let d = find_instr f (function Ir.Func.Binop (Ir.Types.Div, _, _) -> true | _ -> false) in
  (match pl.Placement.safety.(d) with
  | Speculate.Proven _ -> ()
  | s -> Alcotest.failf "const divisor: expected proven, got %s" (safety_str s));
  (* Trap-free operator classes float freely; opaque calls never do. *)
  let f = func_of_src "routine f(a) { if (a > 0) { return g(a) + a * 3; } return 0; }" in
  let pl = Placement.compute f in
  let m = find_instr f (function Ir.Func.Binop (Ir.Types.Mul, _, _) -> true | _ -> false) in
  let c = find_instr f (function Ir.Func.Opaque _ -> true | _ -> false) in
  (match pl.Placement.safety.(m) with
  | Speculate.Safe -> ()
  | s -> Alcotest.failf "mul: expected safe, got %s" (safety_str s));
  match pl.Placement.safety.(c) with
  | Speculate.Pinned Speculate.Call -> ()
  | s -> Alcotest.failf "call: expected pinned, got %s" (safety_str s)

(* A division guarded by a conjunction — [d != 0 && d != -1] — that no
   single interval fact can express. The dominating-fact closure clears it
   at the block inside both guards, upgrading the pin to Proven with early
   clamped there: the loop-invariant division becomes hoistable out of the
   loop, and the checker certifies the hoisted placement (it re-derives the
   same facts independently). Hoisting above the guards must stay rejected. *)
let test_fact_cleared_division () =
  let f =
    func_of_src
      "routine g(n, d) {\n\
      \  r = 0;\n\
      \  if (d != 0) { if (d != -1) {\n\
      \    i = 0;\n\
      \    while (i < n) { r = r + n / d; i = i + 1; }\n\
      \  } }\n\
      \  return r; }"
  in
  let pl = Placement.compute f in
  let d = find_instr f (function Ir.Func.Binop (Ir.Types.Div, _, _) -> true | _ -> false) in
  (match pl.Placement.safety.(d) with
  | Speculate.Proven _ -> ()
  | s -> Alcotest.failf "conjunction-guarded div: expected proven, got %s" (safety_str s));
  Alcotest.(check bool) "division is hoistable out of the loop" true
    (Placement.hoistable pl d);
  let b = Ir.Func.block_of_instr f d in
  let bst = pl.Placement.best.(d) in
  Alcotest.(check bool) "best leaves the loop" true
    (Analysis.Loops.depth_at pl.Placement.forest bst
    < Analysis.Loops.depth_at pl.Placement.forest b);
  let placement = Check.Schedule.identity f in
  placement.(d) <- bst;
  (match Check.Schedule.run ~placement f with
  | [] -> ()
  | errs ->
      Alcotest.failf "fact-cleared hoist b%d->b%d rejected: %s" b bst
        (Check.Diagnostic.to_string (List.hd errs)));
  (* above the guards the facts evaporate: entry must still be illegal *)
  let placement = Check.Schedule.identity f in
  placement.(d) <- Ir.Func.entry;
  expect_checks "hoist above the guards still rejected" f placement [ "sched-speculation" ]

(* ------------------------------------------------------------------ *)
(* Seeded illegal-placement mutants                                    *)

let test_mutant_dominance () =
  let f = func_of_src "routine f(a) { x = a + 1; if (a > 0) { return x; } return 0; }" in
  let x = find_instr f (function Ir.Func.Binop (Ir.Types.Add, _, _) -> true | _ -> false) in
  (* The block returning the constant is the arm that does not use x. *)
  let other_arm =
    Ir.Func.block_of_instr f
      (find_instr f (function
        | Ir.Func.Return v -> ( match Ir.Func.instr f v with Ir.Func.Const 0 -> true | _ -> false)
        | _ -> false))
  in
  let placement = Check.Schedule.identity f in
  placement.(x) <- other_arm;
  expect_checks "def moved off the path to its use" f placement [ "sched-dominance" ]

let test_mutant_speculation () =
  let f = func_of_src "routine f(a, b) { if (b != 0) { return a / b; } return 0; }" in
  let d = find_instr f (function Ir.Func.Binop (Ir.Types.Div, _, _) -> true | _ -> false) in
  let placement = Check.Schedule.identity f in
  placement.(d) <- Ir.Func.entry;
  expect_checks "faulting div hoisted past its guard" f placement [ "sched-speculation" ]

let test_mutant_opaque () =
  let f = func_of_src "routine f(a) { if (a > 0) { return g(a); } return 0; }" in
  let c = find_instr f (function Ir.Func.Opaque _ -> true | _ -> false) in
  let placement = Check.Schedule.identity f in
  placement.(c) <- Ir.Func.entry;
  expect_checks "opaque call moved" f placement [ "sched-speculation" ]

let test_mutant_loop_depth () =
  let f =
    func_of_src
      "routine f(a, n) { x = a * 3; i = 0; s = 0; while (i < n) { s = s + x; i = i + 1; } \
       return s; }"
  in
  let x = find_instr f (function Ir.Func.Binop (Ir.Types.Mul, _, _) -> true | _ -> false) in
  let fr = Analysis.Loops.forest (Analysis.Graph.of_func f) in
  Alcotest.(check int) "one loop" 1 (Array.length fr.Analysis.Loops.loops);
  let header = fr.Analysis.Loops.loops.(0).Analysis.Loops.header in
  let placement = Check.Schedule.identity f in
  placement.(x) <- header;
  expect_checks "invariant pushed into the loop" f placement [ "sched-loop-depth" ]

let test_mutant_phi () =
  let f = func_of_src "routine f(n) { i = 0; while (i < n) { i = i + 1; } return i; }" in
  let p = find_instr f (function Ir.Func.Phi _ -> true | _ -> false) in
  let placement = Check.Schedule.identity f in
  placement.(p) <- Ir.Func.entry;
  expect_checks "phi moved off its join" f placement [ "sched-phi" ]

let test_mutant_placement_vector () =
  let f = func_of_src "routine f(a) { return a + 1; }" in
  let x = find_instr f (function Ir.Func.Binop (Ir.Types.Add, _, _) -> true | _ -> false) in
  let placement = Check.Schedule.identity f in
  placement.(x) <- 99;
  expect_checks "nonexistent target block" f placement [ "sched-placement" ];
  (* A malformed vector is a single placement error, not a crash. *)
  expect_checks "wrong-length vector" f [| 0 |] [ "sched-placement" ]

(* ------------------------------------------------------------------ *)
(* Lints and telemetry                                                 *)

let test_lints () =
  (* The corpus LICM probe: the loop-invariant add is reported, as Info. *)
  let f = func_of_src Workload.Corpus.loop_invariant_src in
  let lints = Placement.lints (Placement.compute f) in
  let invariant = List.filter (fun d -> d.Check.Diagnostic.check = "lint-loop-invariant") lints in
  Alcotest.(check bool) "loop-invariant lint fires" true (invariant <> []);
  List.iter
    (fun d ->
      if d.Check.Diagnostic.severity <> Check.Diagnostic.Info then
        Alcotest.failf "lint is not Info: %s" (Check.Diagnostic.to_string d))
    lints;
  (* A value used on only one arm of a branch can sink to it. *)
  let f = func_of_src "routine f(a) { x = a * 3; if (a > 0) { return x; } return 0; }" in
  let lints = Placement.lints (Placement.compute f) in
  Alcotest.(check bool) "sinkable lint fires" true
    (List.exists (fun d -> d.Check.Diagnostic.check = "lint-sinkable") lints)

let test_obs_counters () =
  let o = Obs.create () in
  let f = func_of_src Workload.Corpus.loop_invariant_src in
  let pl = Placement.compute ~obs:o f in
  let s = Placement.stats pl in
  Alcotest.(check int) "values counter matches stats" s.Placement.values
    (Obs.Metrics.counter o.Obs.metrics "schedule.values");
  Alcotest.(check int) "hoistable counter matches stats" s.Placement.hoistable
    (Obs.Metrics.counter o.Obs.metrics "schedule.hoistable");
  Alcotest.(check bool) "something was hoistable" true (s.Placement.hoistable > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ranges_wellformed;
    Alcotest.test_case "identity placement certifies everywhere" `Quick test_identity_certifies;
    Alcotest.test_case "proposed moves pass the checker" `Quick test_best_moves_certify;
    Alcotest.test_case "speculation classes" `Quick test_speculation_classes;
    Alcotest.test_case "fact-cleared division gains a range" `Quick
      test_fact_cleared_division;
    Alcotest.test_case "mutant: non-dominating move" `Quick test_mutant_dominance;
    Alcotest.test_case "mutant: div hoisted past guard" `Quick test_mutant_speculation;
    Alcotest.test_case "mutant: opaque call moved" `Quick test_mutant_opaque;
    Alcotest.test_case "mutant: move into deeper loop" `Quick test_mutant_loop_depth;
    Alcotest.test_case "mutant: phi moved" `Quick test_mutant_phi;
    Alcotest.test_case "mutant: malformed placement" `Quick test_mutant_placement_vector;
    Alcotest.test_case "opportunity lints" `Quick test_lints;
    Alcotest.test_case "schedule telemetry counters" `Quick test_obs_counters;
  ]

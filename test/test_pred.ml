(* The predicate implication engine (lib/pred): closure unit laws, the
   dominating-fact collection, the GVN driver's multi-fact fallback, and
   two of its three certification layers — the instrumented-interpreter
   differential (collected facts must hold on every concrete trace;
   decided branches must match execution) and the seeded unsound-closure
   mutants, each rejected with a pinned check id. The third layer (the
   static crosscheck against interval facts) lives with its engine in
   test_absint.ml. *)

module A = Pred.Atom
module C = Pred.Closure

let cT k = A.Const k  (* noise reduction *)
let t_ i = A.Term i

let closure facts =
  let cl = C.create () in
  List.iter
    (fun (op, a, b) -> C.assume cl (A.make op a b))
    facts;
  cl

let check_verdict msg expected got =
  let s = function C.True -> "True" | C.False -> "False" | C.Unknown -> "Unknown" in
  if expected <> got then Alcotest.failf "%s: expected %s, got %s" msg (s expected) (s got)

(* ------------------------------------------------------------------ *)
(* Closure unit laws.                                                  *)

let test_closure_transitivity () =
  let open Ir.Types in
  (* a ≤ b ∧ b ≤ c ⇒ a ≤ c *)
  let cl = closure [ (Le, t_ 1, t_ 2); (Le, t_ 2, t_ 3) ] in
  check_verdict "a <= c" C.True (C.decide cl Le (t_ 1) (t_ 3));
  check_verdict "c < a refuted" C.False (C.decide cl Lt (t_ 3) (t_ 1));
  check_verdict "a < c unknown" C.Unknown (C.decide cl Lt (t_ 1) (t_ 3));
  (* strict link makes the chain strict *)
  let cl = closure [ (Lt, t_ 1, t_ 2); (Le, t_ 2, t_ 3) ] in
  check_verdict "a < c" C.True (C.decide cl Lt (t_ 1) (t_ 3));
  check_verdict "a != c" C.True (C.decide cl Ne (t_ 1) (t_ 3))

let test_closure_value_vs_const () =
  let open Ir.Types in
  (* a < b ∧ b < 10 ⇒ a < 9 ≤ anything above *)
  let cl = closure [ (Lt, t_ 1, t_ 2); (Lt, t_ 2, cT 10) ] in
  check_verdict "a < 20" C.True (C.decide cl Lt (t_ 1) (cT 20));
  check_verdict "a <= 8" C.True (C.decide cl Le (t_ 1) (cT 8));
  check_verdict "a > 8 refuted" C.False (C.decide cl Gt (t_ 1) (cT 8));
  check_verdict "a < 8 unknown" C.Unknown (C.decide cl Lt (t_ 1) (cT 8));
  (* constants order themselves *)
  check_verdict "5 < 7" C.True (C.decide cl Lt (cT 5) (cT 7))

let test_closure_congruence () =
  let open Ir.Types in
  (* x = y ∧ y = z ⇒ x = z; disequality propagates across the class *)
  let cl = closure [ (Eq, t_ 1, t_ 2); (Eq, t_ 2, t_ 3); (Ne, t_ 3, t_ 4) ] in
  check_verdict "x = z" C.True (C.decide cl Eq (t_ 1) (t_ 3));
  check_verdict "x != w" C.True (C.decide cl Ne (t_ 1) (t_ 4));
  check_verdict "x vs w order" C.Unknown (C.decide cl Lt (t_ 1) (t_ 4));
  (* equality + bound: x = y ∧ y ≤ 5 ⇒ x ≤ 5 *)
  let cl = closure [ (Eq, t_ 1, t_ 2); (Le, t_ 2, cT 5) ] in
  check_verdict "x <= 5" C.True (C.decide cl Le (t_ 1) (cT 5));
  check_verdict "x > 6 refuted" C.False (C.decide cl Gt (t_ 1) (cT 6))

let test_closure_diseq_sharpening () =
  let open Ir.Types in
  (* x > 2 ∧ x ≠ 3 ⇒ x > 3 (integer boundary sharpening) *)
  let cl = closure [ (Gt, t_ 1, cT 2); (Ne, t_ 1, cT 3) ] in
  check_verdict "x > 3" C.True (C.decide cl Gt (t_ 1) (cT 3));
  check_verdict "x >= 4" C.True (C.decide cl Ge (t_ 1) (cT 4));
  (* and in the reversed assumption order *)
  let cl = closure [ (Ne, t_ 1, cT 3); (Gt, t_ 1, cT 2) ] in
  check_verdict "x > 3 (reordered)" C.True (C.decide cl Gt (t_ 1) (cT 3))

let test_closure_contradictions () =
  let open Ir.Types in
  let contra facts = Alcotest.(check bool) "contradictory" true (C.contradictory (closure facts)) in
  contra [ (Eq, t_ 1, cT 5); (Eq, t_ 1, cT 7) ];  (* two constants in a class *)
  contra [ (Eq, t_ 1, t_ 2); (Ne, t_ 1, t_ 2) ];  (* equal and disequal *)
  contra [ (Lt, t_ 1, t_ 2); (Lt, t_ 2, t_ 1) ];  (* negative cycle *)
  contra [ (Le, t_ 1, cT 3); (Ge, t_ 1, cT 4) ];  (* empty interval *)
  contra [ (Lt, t_ 1, cT min_int) ];  (* below the machine domain *)
  contra [ (Gt, t_ 1, cT max_int) ];
  (* a contradictory closure never decides *)
  let cl = closure [ (Eq, t_ 1, cT 5); (Eq, t_ 1, cT 7) ] in
  check_verdict "no verdicts under contradiction" C.Unknown (C.decide cl Eq (t_ 1) (cT 5))

let test_closure_trap_boundaries () =
  let open Ir.Types in
  (* x ≤ min_int strengthens to x = min_int; x ≥ max_int to x = max_int *)
  let cl = closure [ (Le, t_ 1, cT min_int) ] in
  Alcotest.(check bool) "satisfiable" false (C.contradictory cl);
  check_verdict "x = min_int" C.True (C.decide cl Eq (t_ 1) (cT min_int));
  let cl = closure [ (Ge, t_ 1, cT max_int) ] in
  check_verdict "x = max_int" C.True (C.decide cl Eq (t_ 1) (cT max_int));
  (* bounds at the domain edge must not wrap into false verdicts *)
  let cl = closure [ (Le, t_ 1, cT min_int); (Le, t_ 2, t_ 1) ] in
  Alcotest.(check bool) "still satisfiable" false (C.contradictory cl);
  check_verdict "y <= min_int" C.True (C.decide cl Le (t_ 2) (cT min_int));
  check_verdict "y > min_int refuted" C.False (C.decide cl Gt (t_ 2) (cT min_int))

(* The closure's True/False verdicts versus brute-force evaluation of
   random fact sets over a small domain: every verdict must hold in every
   satisfying assignment. *)
let test_closure_differential () =
  let rng = Util.Prng.create 0x9ec1 in
  let cmps = [| Ir.Types.Eq; Ir.Types.Ne; Ir.Types.Lt; Ir.Types.Le; Ir.Types.Gt; Ir.Types.Ge |] in
  let nterms = 3 and lo = -2 and hi = 2 in
  let term k = if k < 2 then cT (Util.Prng.range rng lo hi) else t_ (Util.Prng.range rng 0 (nterms - 1)) in
  for _ = 1 to 2000 do
    let nfacts = Util.Prng.range rng 1 4 in
    let facts =
      List.init nfacts (fun _ ->
          (Util.Prng.choose rng cmps, term (Util.Prng.range rng 0 5), term (Util.Prng.range rng 0 5)))
    in
    let qop = Util.Prng.choose rng cmps in
    let qa = term (Util.Prng.range rng 0 5) and qb = term (Util.Prng.range rng 0 5) in
    let cl = closure facts in
    let verdict = C.decide cl qop qa qb in
    let contra = C.contradictory cl in
    (* enumerate assignments of the [nterms] term ids over [lo..hi] *)
    let models = ref 0 and q_true = ref 0 in
    let assign = Array.make nterms lo in
    let value = function A.Const k -> k | A.Term i -> assign.(i) in
    let holds (op, a, b) = Ir.Types.eval_cmp op (value a) (value b) = 1 in
    let rec enum i =
      if i = nterms then begin
        if List.for_all holds facts then begin
          incr models;
          if holds (qop, qa, qb) then incr q_true
        end
      end
      else
        for v = lo to hi do
          assign.(i) <- v;
          enum (i + 1)
        done
    in
    enum 0;
    let pp_fact ppf (op, a, b) =
      Fmt.pf ppf "%a %s %a" A.pp_term a (Ir.Types.string_of_cmp op) A.pp_term b
    in
    let ctx () =
      Fmt.str "facts [%a] query %a" (Fmt.list ~sep:(Fmt.any "; ") pp_fact) facts pp_fact
        (qop, qa, qb)
    in
    (* contradiction claims require zero models over the whole int range;
       the small domain only refutes (a model found ⇒ satisfiable). *)
    if contra && !models > 0 then
      Alcotest.failf "spurious contradiction: %s" (ctx ());
    (match verdict with
    | C.True -> if !q_true <> !models then Alcotest.failf "unsound True: %s" (ctx ())
    | C.False -> if !q_true <> 0 then Alcotest.failf "unsound False: %s" (ctx ())
    | C.Unknown -> ())
  done

(* ------------------------------------------------------------------ *)
(* Fact collection.                                                    *)

let test_facts_collection () =
  let f =
    Helpers.func_of_src
      "routine g(a, b) { if (a < b) { if (b < 10) { return a; } return b; } return 0; }"
  in
  let facts = Pred.Facts.compute f in
  let has_fact b (op, x, y) =
    match A.make op x y with
    | A.Atom at -> List.exists (A.equal at) (Pred.Facts.at_block facts b)
    | A.Triv _ -> false
  in
  (* find the block returning [a]: both guards dominate it *)
  let found = ref false in
  for b = 0 to Array.length f.Ir.Func.blocks - 1 do
    let term = Ir.Func.terminator_of_block f b in
    match Ir.Func.instr f term with
    | Ir.Func.Return v when (match Ir.Func.instr f v with Ir.Func.Param 0 -> true | _ -> false)
      -> begin
        found := true;
        let cmp_args pred =
          (* the Lt comparisons feeding the two branches *)
          let out = ref [] in
          for i = 0 to Ir.Func.num_instrs f - 1 do
            match Ir.Func.instr f i with
            | Ir.Func.Cmp (Ir.Types.Lt, x, y) when pred x y -> out := (x, y) :: !out
            | _ -> ()
          done;
          !out
        in
        let var_var = cmp_args (fun _ y -> match Ir.Func.instr f y with Ir.Func.Const _ -> false | _ -> true) in
        let var_const = cmp_args (fun _ y -> match Ir.Func.instr f y with Ir.Func.Const 10 -> true | _ -> false) in
        (match var_var with
        | [ (x, y) ] ->
            Alcotest.(check bool) "a < b collected" true (has_fact b (Ir.Types.Lt, t_ x, t_ y))
        | _ -> Alcotest.fail "expected one var-var comparison");
        match var_const with
        | [ (x, _) ] ->
            Alcotest.(check bool) "b < 10 collected" true (has_fact b (Ir.Types.Lt, t_ x, cT 10))
        | _ -> Alcotest.fail "expected one var-const comparison"
      end
    | _ -> ()
  done;
  Alcotest.(check bool) "found the then-block" true !found

let test_facts_switch_default () =
  let f =
    Helpers.func_of_src
      "routine s(x) { switch (x) { case 3: { return 1; } case 5: { return 2; } } return 0; }"
  in
  let facts = Pred.Facts.compute f in
  (* the default block (returning 0) excludes both cases *)
  let checked = ref false in
  for b = 0 to Array.length f.Ir.Func.blocks - 1 do
    match Ir.Func.instr f (Ir.Func.terminator_of_block f b) with
    | Ir.Func.Return v when (match Ir.Func.instr f v with Ir.Func.Const 0 -> true | _ -> false) ->
        checked := true;
        let cl = Pred.Facts.closure_at_block facts b in
        (* the scrutinee is the routine's parameter *)
        let x = ref (-1) in
        for i = 0 to Ir.Func.num_instrs f - 1 do
          match Ir.Func.instr f i with Ir.Func.Param 0 -> x := i | _ -> ()
        done;
        check_verdict "x != 3 in default" C.True (C.decide cl Ir.Types.Ne (t_ !x) (cT 3));
        check_verdict "x != 5 in default" C.True (C.decide cl Ir.Types.Ne (t_ !x) (cT 5));
        check_verdict "x != 4 unknown" C.Unknown (C.decide cl Ir.Types.Ne (t_ !x) (cT 4))
    | _ -> ()
  done;
  Alcotest.(check bool) "found the default block" true !checked

(* ------------------------------------------------------------------ *)
(* The driver's multi-fact fallback: strictly stronger than single-fact
   inference, and behaviour-preserving.                                 *)

let pred_config = { Pgvn.Config.full with pred_closure = true }

let chain_src =
  "routine chain(a, b, c) {\n\
  \  if (a <= b) { if (b <= c) { if (a <= c) { return 1; } return 2; } }\n\
  \  return 0; }"

let bounds_src =
  "routine bounds(a, b) {\n\
  \  if (a < b) { if (b < 10) { if (a < 20) { return 1; } return 2; } }\n\
  \  return 0; }"

let sharpen_src =
  "routine sharpen(x) {\n\
  \  if (x > 2) { if (x != 3) { if (x > 3) { return 1; } return 2; } }\n\
  \  return 0; }"

let run_counts config src =
  let f = Helpers.func_of_src src in
  let st = Pgvn.Driver.run config f in
  let s = Pgvn.Driver.summarize st in
  (st, s.Pgvn.Driver.reachable_blocks)

let check_closure_win ~name src =
  let st_base, blocks_base = run_counts Pgvn.Config.full src in
  let st_pred, blocks_pred = run_counts pred_config src in
  Alcotest.(check int)
    (name ^ ": single-fact baseline decides nothing extra")
    0
    (List.length (Pgvn.Driver.decided_branches st_base));
  Alcotest.(check bool)
    (name ^ ": closure decides the inner branch")
    true
    (List.length (Pgvn.Driver.decided_branches st_pred) >= 1);
  Alcotest.(check bool)
    (name ^ ": dead arm unreachable")
    true (blocks_pred < blocks_base);
  Alcotest.(check bool)
    (name ^ ": closure verdicts recorded")
    true
    (st_pred.Pgvn.State.stats.Pgvn.Run_stats.pred_decided_true
     + st_pred.Pgvn.State.stats.Pgvn.Run_stats.pred_decided_false
     >= 1);
  (* behaviour preserved end to end *)
  let f = Helpers.func_of_src src in
  let g = Helpers.optimize pred_config (Helpers.func_of_src src) in
  Alcotest.(check bool) (name ^ ": equivalent") true (Helpers.equivalent ~seed:0x42 f g)

let test_driver_le_chain () = check_closure_win ~name:"chain" chain_src
let test_driver_bounds () = check_closure_win ~name:"bounds" bounds_src
let test_driver_sharpen () = check_closure_win ~name:"sharpen" sharpen_src

let test_driver_switch_default () =
  let src =
    "routine sd(x) {\n\
    \  switch (x) { case 0: { return 10; } case 1: { return 11; } case 2: { return 12; } }\n\
    \  if (x == 1) { return 99; }\n\
    \  return 13; }"
  in
  let st_base, _ = run_counts Pgvn.Config.full src in
  let st_pred, _ = run_counts pred_config src in
  Alcotest.(check int) "baseline leaves the default test" 0
    (List.length (Pgvn.Driver.decided_branches st_base));
  Alcotest.(check bool) "closure refutes x == 1 in the default arm" true
    (st_pred.Pgvn.State.stats.Pgvn.Run_stats.pred_decided_false >= 1);
  let f = Helpers.func_of_src src in
  let g = Helpers.optimize pred_config (Helpers.func_of_src src) in
  Alcotest.(check bool) "equivalent" true (Helpers.equivalent ~seed:0x43 f g)

(* Strictly stronger, corpus-wide: with the fallback on, every branch the
   baseline decides stays decided, and the engine's other outputs are
   otherwise reached through the identical code path. *)
let test_driver_monotone_on_corpus () =
  List.iter
    (fun (name, src) ->
      let f = Helpers.func_of_src src in
      let st_base = Pgvn.Driver.run Pgvn.Config.full f in
      let f' = Helpers.func_of_src src in
      let st_pred = Pgvn.Driver.run pred_config f' in
      let count st = List.length (Pgvn.Driver.decided_branches st) in
      if count st_pred < count st_base then
        Alcotest.failf "%s: closure lost decided branches (%d < %d)" name (count st_pred)
          (count st_base))
    Workload.Corpus.all_named

(* ------------------------------------------------------------------ *)
(* Certification: the instrumented-interpreter differential.            *)

(* Replay a routine's collected facts and decided branches on concrete
   traces. Returns the pinned ids of violated checks:
   - "pred-trace-fact": a collected block/edge fact evaluated false on a
     trace that reached it;
   - "pred-trace-contra": a block whose dominating facts are contradictory
     (statically unreachable) was entered;
   - "pred-exec-branch": execution traversed an edge the engine decided
     unreachable. *)
let trace_violations ?(runs = 25) config f =
  let violations = ref [] in
  let violate id = if not (List.mem id !violations) then violations := id :: !violations in
  let facts = Pred.Facts.compute f in
  let nb = Array.length f.Ir.Func.blocks in
  let contra =
    Array.init nb (fun b -> C.contradictory (Pred.Facts.closure_at_block facts b))
  in
  let st = Pgvn.Driver.run config f in
  let pruned = Array.make (Array.length f.Ir.Func.edges) false in
  List.iter
    (fun db -> List.iter (fun e -> pruned.(e) <- true) db.Pgvn.Driver.db_pruned)
    (Pgvn.Driver.decided_branches st);
  let rng = Util.Prng.create 0x5eed in
  let extremes = [| min_int; max_int; -1; 0; 1; 3; 4 |] in
  for run = 1 to runs do
    let env = Hashtbl.create 64 in
    let args =
      Array.init 8 (fun _ ->
          if run mod 3 = 0 then Util.Prng.choose rng extremes
          else Util.Prng.range rng (-15) 15)
    in
    let check_atoms atoms =
      List.iter
        (fun a ->
          match A.eval (Hashtbl.find env) a with
          | true -> ()
          | false -> violate "pred-trace-fact"
          | exception Not_found -> ())
        atoms
    in
    ignore
      (Ir.Interp.run_instrumented
         ~on_def:(fun i v -> Hashtbl.replace env i v)
         ~on_block:(fun b ->
           if contra.(b) then violate "pred-trace-contra";
           check_atoms (Pred.Facts.at_block facts b))
         ~on_edge:(fun e ->
           if pruned.(e) then violate "pred-exec-branch";
           check_atoms (Pred.Facts.at_edge facts e))
         f args)
  done;
  !violations

let test_differential_corpus () =
  List.iter
    (fun (name, src) ->
      let f = Helpers.func_of_src src in
      match trace_violations pred_config f with
      | [] -> ()
      | vs -> Alcotest.failf "%s: violated %s" name (String.concat ", " vs))
    Workload.Corpus.all_named

let test_differential_generated () =
  for seed = 1 to 25 do
    let f = Workload.Generator.func ~seed ~name:(Printf.sprintf "gen%d" seed) () in
    match trace_violations ~runs:10 pred_config f with
    | [] -> ()
    | vs -> Alcotest.failf "gen seed %d: violated %s" seed (String.concat ", " vs)
  done

(* ------------------------------------------------------------------ *)
(* Certification: seeded unsound-closure mutants.                       *)

(* A fabricated-verdict mutant must be caught by the decided-branch replay:
   the cyclic chain a ≤ b ≤ c with an undecidable closing test. *)
let test_mutant_force_true () =
  let src =
    "routine cyc(a, b, c) {\n\
    \  if (a <= b) { if (b <= c) { if (c <= a) { return 1; } return 2; } }\n\
    \  return 0; }"
  in
  let f = Helpers.func_of_src src in
  Alcotest.(check (list string)) "sound engine is clean" []
    (trace_violations pred_config f);
  let f' = Helpers.func_of_src src in
  let vs = C.with_fault C.Force_true (fun () -> trace_violations pred_config f') in
  Alcotest.(check bool)
    "Force_true rejected by pred-exec-branch" true
    (List.mem "pred-exec-branch" vs)

(* Certification: the static crosscheck against interval facts. Every
   closure verdict on the corpus and the benchmark suite replays cleanly;
   a flipped-verdict mutant is refuted with the pinned id
   "pred-vs-interval". *)

let crosscheck_report src =
  let f = Helpers.func_of_src src in
  let st = Pgvn.Driver.run pred_config f in
  Absint.Crosscheck.run st

let test_crosscheck_corpus () =
  let checked = ref 0 in
  List.iter
    (fun (name, src) ->
      let r = crosscheck_report src in
      checked := !checked + r.Absint.Crosscheck.pred_checked;
      if not (Absint.Crosscheck.ok r) then
        Alcotest.failf "%s: %s" name (Fmt.to_to_string Absint.Crosscheck.pp_report r))
    Workload.Corpus.all_named;
  List.iter
    (fun ((bm : Workload.Suite.benchmark), fs) ->
      List.iter
        (fun f ->
          let st = Pgvn.Driver.run pred_config f in
          let r = Absint.Crosscheck.run st in
          checked := !checked + r.Absint.Crosscheck.pred_checked;
          if not (Absint.Crosscheck.ok r) then
            Alcotest.failf "%s/%s: %s" bm.Workload.Suite.name f.Ir.Func.name
              (Fmt.to_to_string Absint.Crosscheck.pp_report r))
        fs)
    (Workload.Suite.all ~scale:0.05 ())

let test_mutant_flip_verdict () =
  (* x > 2 ∧ x ≠ 3 ⇒ x > 3 — the interval analysis derives x ∈ [4, ∞) at
     the inner test, so a flipped closure verdict is refuted statically. *)
  let r = crosscheck_report sharpen_src in
  Alcotest.(check bool) "sound engine replays clean" true (Absint.Crosscheck.ok r);
  Alcotest.(check bool) "closure verdicts were replayed" true
    (r.Absint.Crosscheck.pred_checked >= 1);
  let r = C.with_fault C.Flip_verdict (fun () -> crosscheck_report sharpen_src) in
  let rendered = Fmt.to_to_string Absint.Crosscheck.pp_report r in
  Alcotest.(check bool) "Flip_verdict rejected" false (Absint.Crosscheck.ok r);
  Alcotest.(check bool) "pinned id pred-vs-interval" true
    (let re = "[pred-vs-interval]" in
     let n = String.length rendered and m = String.length re in
     let rec scan i = i + m <= n && (String.sub rendered i m = re || scan (i + 1)) in
     scan 0)

(* A wrapped −min_int mutant claims reachable paths contradictory; caught
   by the contradiction replay. The min_int constant must appear
   syntactically, so the routine is built directly. *)
let test_mutant_wrap_const_negate () =
  let b = Ir.Builder.create ~name:"minint" ~nparams:1 in
  let b0 = Ir.Builder.add_block b in
  let b1 = Ir.Builder.add_block b in
  let b2 = Ir.Builder.add_block b in
  let p = Ir.Builder.param b b0 0 in
  let c = Ir.Builder.const b b0 min_int in
  let t = Ir.Builder.cmp b b0 Ir.Types.Eq p c in
  ignore (Ir.Builder.branch b b0 t ~ift:b1 ~iff:b2);
  Ir.Builder.ret b b1 (Ir.Builder.const b b1 1);
  Ir.Builder.ret b b2 (Ir.Builder.const b b2 0);
  let f = Ir.Builder.finish b in
  Alcotest.(check (list string)) "sound engine is clean" []
    (trace_violations pred_config f);
  let vs = C.with_fault C.Wrap_const_negate (fun () -> trace_violations pred_config f) in
  Alcotest.(check bool)
    "Wrap_const_negate rejected by pred-trace-contra" true
    (List.mem "pred-trace-contra" vs)

let suite =
  [
    Alcotest.test_case "closure: transitivity of </<= chains" `Quick test_closure_transitivity;
    Alcotest.test_case "closure: value-vs-constant bounds" `Quick test_closure_value_vs_const;
    Alcotest.test_case "closure: congruence + disequalities" `Quick test_closure_congruence;
    Alcotest.test_case "closure: disequality boundary sharpening" `Quick
      test_closure_diseq_sharpening;
    Alcotest.test_case "closure: contradictions" `Quick test_closure_contradictions;
    Alcotest.test_case "closure: min_int/max_int trap-awareness" `Quick
      test_closure_trap_boundaries;
    Alcotest.test_case "closure: random differential vs brute force" `Quick
      test_closure_differential;
    Alcotest.test_case "facts: dominating-path collection" `Quick test_facts_collection;
    Alcotest.test_case "facts: switch default-edge exclusions" `Quick test_facts_switch_default;
    Alcotest.test_case "driver: <= chain decided by the closure" `Quick test_driver_le_chain;
    Alcotest.test_case "driver: var-var + var-const bounds decided" `Quick test_driver_bounds;
    Alcotest.test_case "driver: boundary sharpening decided" `Quick test_driver_sharpen;
    Alcotest.test_case "driver: switch default facts decided" `Quick test_driver_switch_default;
    Alcotest.test_case "driver: strictly stronger on the corpus" `Quick
      test_driver_monotone_on_corpus;
    Alcotest.test_case "differential: corpus traces respect facts" `Quick
      test_differential_corpus;
    Alcotest.test_case "differential: generated traces respect facts" `Quick
      test_differential_generated;
    Alcotest.test_case "crosscheck: corpus + suite closure claims replay clean" `Quick
      test_crosscheck_corpus;
    Alcotest.test_case "mutant: Force_true rejected (pred-exec-branch)" `Quick
      test_mutant_force_true;
    Alcotest.test_case "mutant: Flip_verdict rejected (pred-vs-interval)" `Quick
      test_mutant_flip_verdict;
    Alcotest.test_case "mutant: Wrap_const_negate rejected (pred-trace-contra)" `Quick
      test_mutant_wrap_const_negate;
  ]

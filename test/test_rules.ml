(* The declarative rewrite-rule subsystem (lib/rules): the shipped catalog
   must come through the soundness verifier clean, deliberately unsound
   mutant rules must be rejected with a witness, the compiled matcher must
   agree behaviorally with direct operator semantics (what the old
   hand-coded fold ladders implemented), the engine must not lose
   congruence strength on the ten-benchmark suite, and rule firings must
   surface as observability counters. *)

module P = Rules.Pattern
module V = Rules.Verify
module E = Pgvn.Expr

(* Deterministic: the same seed the --rules=verify CLI gate uses. *)
let fixed_seed = 0x5eed

(* ---------------- catalog soundness ---------------- *)

let test_catalog_verifies () =
  let report = V.verify_all ~seed:fixed_seed Rules.catalog in
  Alcotest.(check bool) "catalog verifies" true (V.ok report);
  Alcotest.(check bool) "catalog is non-trivial" true (List.length Rules.catalog >= 30);
  List.iter
    (fun (s : V.status) ->
      Alcotest.(check bool)
        (s.V.rule.P.name ^ ": exhaustively checked")
        true
        (s.V.exhaustive_checked > 0);
      Alcotest.(check bool) (s.V.rule.P.name ^ ": fuzzed") true (s.V.fuzz_checked > 0))
    report.V.statuses

(* Stability of the verifier itself: a second run with the same seed must
   reproduce the same statuses (the CLI gate depends on determinism). *)
let test_verifier_deterministic () =
  let counts r =
    List.map (fun (s : V.status) -> (s.V.exhaustive_checked, s.V.fuzz_checked)) r.V.statuses
  in
  let a = V.verify_all ~seed:fixed_seed Rules.catalog in
  let b = V.verify_all ~seed:fixed_seed Rules.catalog in
  Alcotest.(check (list (pair int int))) "same check counts" (counts a) (counts b)

(* ---------------- unsound mutants are rejected ---------------- *)

let mk name lhs rhs = { P.name; lhs; rhs; guard = None; guard_doc = ""; commutes = false }

let rejected r = not (V.rule_ok (V.verify_rule ~seed:fixed_seed r))

let test_mutants_rejected () =
  (* x / x -> 1 violates fault agreement: at x = 0 the LHS traps and the
     RHS yields 1 (traps are observable through the interpreter). *)
  Alcotest.(check bool)
    "div-self rejected" true
    (rejected (mk "mutant-div-self" (P.Pbinop (Ir.Types.Div, P.Pvar 0, P.Pvar 0)) (P.Rconst 1)));
  (* !!x -> x confuses double logical negation with identity: !!5 = 1. *)
  Alcotest.(check bool)
    "lnot-lnot rejected" true
    (rejected
       (mk "mutant-lnot-lnot"
          (P.Punop (Ir.Types.Lnot, P.Punop (Ir.Types.Lnot, P.Pvar 0)))
          (P.Rvar 0)));
  (* x * 2 -> x shl 1 is unsound here: shift amounts mask with [land 62],
     so bit 0 of the amount is dropped and [x shl 1 = x]. *)
  Alcotest.(check bool)
    "mul2-to-shl rejected" true
    (rejected
       (mk "mutant-mul2-shl"
          (P.Pbinop (Ir.Types.Mul, P.Pvar 0, P.Pconst 2))
          (P.Rbinop (Ir.Types.Shl, P.Rvar 0, P.Rconst 1))));
  (* x rem -1 -> 0 violates fault agreement at x = min_int (the quotient
     min_int / -1 overflows, and rem faults with it). *)
  Alcotest.(check bool)
    "rem-neg1 rejected" true
    (rejected (mk "mutant-rem-neg1" (P.Pbinop (Ir.Types.Rem, P.Pvar 0, P.Pconst (-1))) (P.Rconst 0)))

(* ---------------- catalog meta-lints ---------------- *)

let has_fatal_for name lints =
  List.exists
    (fun (l : V.lint) -> l.V.level = V.Fatal && List.mem name l.V.rules)
    lints

let test_termination_lint () =
  (* x + 0 -> 0 + x does not decrease the termination weight; rewriting
     could ping-pong forever, so the lint must be fatal. *)
  let flipped =
    mk "mutant-add-zero-flip"
      (P.Pbinop (Ir.Types.Add, P.Pvar 0, P.Pconst 0))
      (P.Rbinop (Ir.Types.Add, P.Rconst 0, P.Rvar 0))
  in
  let lints = V.lint_catalog [ flipped ] in
  Alcotest.(check bool) "termination lint fires" true (has_fatal_for flipped.P.name lints);
  Alcotest.(check bool)
    "verify_all rejects the catalog" false
    (V.ok (V.verify_all ~seed:fixed_seed [ flipped ]))

let test_shadow_lint () =
  (* An unguarded earlier rule whose pattern subsumes a later one makes the
     later rule dead: first-match-wins never reaches it. *)
  let broad = mk "broad" (P.Pbinop (Ir.Types.And, P.Pvar 0, P.Pvar 1)) (P.Rvar 0) in
  let dead = mk "dead" (P.Pbinop (Ir.Types.And, P.Pvar 0, P.Pconst 0)) (P.Rconst 0) in
  let lints = V.lint_catalog [ broad; dead ] in
  Alcotest.(check bool) "shadow lint fires" true (has_fatal_for "dead" lints)

(* ---------------- matcher vs. direct semantics ---------------- *)

(* The compiled matcher replaced hand-coded identity ladders whose contract
   was: the simplified expression is semantically identical to the plain
   operator application, with strict trap agreement. Property-test exactly
   that contract over random atoms. *)

exception Trap

let rec eval_expr (env : int array) (e : E.t) : int =
  match e with
  | E.Const n -> n
  | E.Value v -> env.(v)
  | E.Sum ts ->
      List.fold_left
        (fun acc (t : E.term) ->
          acc + (t.E.coeff * List.fold_left (fun p v -> p * env.(v)) 1 t.E.factors))
        0 ts
  | E.Op (E.Ubop op, [ a; b ]) -> (
      let x = eval_expr env a and y = eval_expr env b in
      match Ir.Types.fold_binop op x y with Some r -> r | None -> raise Trap)
  | E.Op (E.Uuop op, [ a ]) -> Ir.Types.eval_unop op (eval_expr env a)
  | E.Cmp (c, a, b) -> Ir.Types.eval_cmp c (eval_expr env a) (eval_expr env b)
  | _ -> Alcotest.fail "unexpected expression shape from binop_atoms"

let rank v = v + 1

let gen_atom =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> E.Const n) (int_range (-8) 8);
        oneofl
          [
            E.Const min_int;
            E.Const max_int;
            E.Const (-1);
            E.Const 62;
            E.Const 63;
            E.Const (1 lsl 61);
          ];
        map (fun v -> E.Value v) (int_range 0 3);
      ])

let gen_binop =
  QCheck.Gen.oneofl
    Ir.Types.[ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr ]

let gen_unop = QCheck.Gen.oneofl Ir.Types.[ Neg; Lnot; Bnot ]

let arb_env =
  QCheck.(
    array_of_size (Gen.return 4)
      (oneof [ int_range (-8) 8; oneofl [ min_int; max_int; 62; 1 lsl 61 ] ]))

let sem env e = try Some (eval_expr env e) with Trap -> None

let prop_binop_atoms_semantics =
  QCheck.Test.make ~name:"binop_atoms agrees with operator semantics (trap-strict)"
    ~count:2000
    QCheck.(
      quad (make gen_binop) (make gen_atom) (make gen_atom) arb_env)
    (fun (op, a, b, env) ->
      let direct =
        try
          let x = eval_expr env a and y = eval_expr env b in
          Ir.Types.fold_binop op x y
        with Trap -> None
      in
      direct = sem env (E.binop_atoms rank op a b))

let prop_unop_atom_semantics =
  QCheck.Test.make ~name:"unop_atom agrees with operator semantics" ~count:1000
    QCheck.(triple (make gen_unop) (make gen_atom) arb_env)
    (fun (op, a, env) ->
      let direct = try Some (Ir.Types.eval_unop op (eval_expr env a)) with Trap -> None in
      direct = sem env (E.unop_atom rank op a))

(* ---------------- ten-benchmark congruence differential ---------------- *)

(* Per-benchmark whole-suite sums at scale 0.1, with the rule catalog off
   (constant folding and commutative canonicalization only) versus the full
   configuration. The rule engine may only improve on the catalog-free
   baseline: same value universe, at least as many constants and
   unreachable values, at most as many congruence classes. Computing the
   baseline from the same suite run keeps the differential valid when the
   workload generator evolves. *)
let suite_totals config funcs =
  let values = ref 0 and consts = ref 0 and unreach = ref 0 and classes = ref 0 in
  List.iter
    (fun f ->
      let st = Pgvn.Driver.run config f in
      let s = Pgvn.Driver.summarize st in
      values := !values + s.Pgvn.Driver.values;
      consts := !consts + s.Pgvn.Driver.constant_values;
      unreach := !unreach + s.Pgvn.Driver.unreachable_values;
      classes := !classes + s.Pgvn.Driver.congruence_classes)
    funcs;
  (!values, !consts, !unreach, !classes)

let test_benchmark_differential () =
  let suite = Workload.Suite.all ~scale:0.1 () in
  let baseline_config = { Pgvn.Config.full with Pgvn.Config.rules = false } in
  List.iter
    (fun ((b : Workload.Suite.benchmark), funcs) ->
      let name = b.Workload.Suite.name in
      let bv, bc, bu, bk = suite_totals baseline_config funcs in
      let values, consts, unreach, classes = suite_totals Pgvn.Config.full funcs in
      Alcotest.(check int) (name ^ ": same value universe") bv values;
      Alcotest.(check bool)
        (Printf.sprintf "%s: constants %d >= baseline %d" name consts bc)
        true (consts >= bc);
      Alcotest.(check bool)
        (Printf.sprintf "%s: unreachable %d >= baseline %d" name unreach bu)
        true (unreach >= bu);
      Alcotest.(check bool)
        (Printf.sprintf "%s: classes %d <= baseline %d" name classes bk)
        true (classes <= bk))
    suite;
  Alcotest.(check int) "all ten benchmarks covered" 10 (List.length suite)

(* ---------------- observability ---------------- *)

let fired_func () =
  let bld = Ir.Builder.create ~name:"rules_obs" ~nparams:1 in
  let b = Ir.Builder.add_block bld in
  let p = Ir.Builder.param bld b 0 in
  let v = Ir.Builder.binop bld b Ir.Types.And p p in
  Ir.Builder.ret bld b v;
  Ir.Builder.finish bld

let test_fired_counters () =
  let o = Obs.create () in
  ignore (Pgvn.Driver.run ~obs:o Pgvn.Config.full (fired_func ()));
  let snap = Obs.Metrics.snapshot o.Obs.metrics in
  let fired =
    List.filter
      (fun (k, n) ->
        String.length k > 12 && String.sub k 0 12 = "rules.fired." && n > 0)
      snap.Obs.Metrics.counters
  in
  Alcotest.(check bool)
    "x & x fires and-self" true
    (List.mem_assoc "rules.fired.and-self" fired)

let test_rules_off_config () =
  (* With the catalog disabled the And-idempotence congruence disappears
     (x & x stays its own class) but the run still succeeds. *)
  let f = fired_func () in
  let on = Pgvn.Driver.summarize (Pgvn.Driver.run Pgvn.Config.full f) in
  let off =
    Pgvn.Driver.summarize
      (Pgvn.Driver.run { Pgvn.Config.full with Pgvn.Config.rules = false } f)
  in
  Alcotest.(check bool)
    "catalog strictly refines" true
    (off.Pgvn.Driver.congruence_classes > on.Pgvn.Driver.congruence_classes)

let suite =
  [
    Alcotest.test_case "catalog passes the soundness verifier" `Quick test_catalog_verifies;
    Alcotest.test_case "verifier is deterministic under a fixed seed" `Quick
      test_verifier_deterministic;
    Alcotest.test_case "unsound mutant rules are rejected" `Quick test_mutants_rejected;
    Alcotest.test_case "non-terminating rule draws a fatal lint" `Quick test_termination_lint;
    Alcotest.test_case "shadowed rule draws a fatal lint" `Quick test_shadow_lint;
    QCheck_alcotest.to_alcotest prop_binop_atoms_semantics;
    QCheck_alcotest.to_alcotest prop_unop_atom_semantics;
    Alcotest.test_case "ten-benchmark congruence differential" `Slow
      test_benchmark_differential;
    Alcotest.test_case "rule firings surface as Obs counters" `Quick test_fired_counters;
    Alcotest.test_case "Config.rules = false disables the catalog" `Quick
      test_rules_off_config;
  ]

(* The gvnopt driver's exit-code contract (documented in bin/gvnopt.ml):
   0 on a clean run, 1 on diagnostics at or above the failure threshold,
   2 on usage or parse errors. The binary is a declared test dependency, so
   it sits next to the test executable's directory in the build tree. *)

let gvnopt = Filename.concat (Filename.concat ".." "bin") "gvnopt.exe"

let write_tmp name contents =
  let path = Filename.concat (Filename.get_temp_dir_name ()) ("gvnopt_cli_" ^ name) in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let run args =
  Sys.command (Filename.quote_command gvnopt ~stdout:Filename.null ~stderr:Filename.null args)

(* Like [run], but capture stdout for output-format checks. *)
let run_capture args =
  let out = Filename.temp_file "gvnopt_cli" ".out" in
  let code = Sys.command (Filename.quote_command gvnopt ~stdout:out ~stderr:Filename.null args) in
  let ic = open_in_bin out in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, s)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let clean_mc () = write_tmp "clean.mc" "routine f(a) { return a + 1; }\n"

let test_exit_clean () =
  let p = clean_mc () in
  Alcotest.(check int) "plain run" 0 (run [ p ]);
  Alcotest.(check int) "--check" 0 (run [ "--check"; p ]);
  (* Like --validate, the bare flag takes its default mode; trailing
     position keeps the file from being parsed as the mode. *)
  Alcotest.(check int) "bare --analyze" 0 (run [ p; "--analyze" ])

let test_exit_analyze () =
  let p = clean_mc () in
  Alcotest.(check int) "--analyze=gvn" 0 (run [ "--analyze=gvn"; p ]);
  Alcotest.(check int) "--analyze=const" 0 (run [ "--analyze=const"; p ]);
  Alcotest.(check int) "--analyze=range" 0 (run [ "--analyze=range"; p ]);
  Alcotest.(check int) "--analyze=all" 0 (run [ "--analyze=all"; p ]);
  Alcotest.(check int) "bad analyze mode" 2 (run [ "--analyze=bogus"; p ])

let test_analyze_output () =
  let p = write_tmp "facts.mc" "routine f(a) { x = 3; y = x + 4; return y; }\n" in
  let code, out = run_capture [ "--analyze=all"; p ] in
  Alcotest.(check int) "exit 0" 0 code;
  (* The output-format contract: per-analysis fact sections, per-definition
     facts rendered through the printer, and the cross-check summary. *)
  Alcotest.(check bool) "const section" true (contains out "--- const facts ---");
  Alcotest.(check bool) "range section" true (contains out "--- range facts ---");
  Alcotest.(check bool) "const fact" true (contains out ";; const 7");
  Alcotest.(check bool) "range fact" true (contains out ";; [7, 7]");
  Alcotest.(check bool) "crosscheck line" true (contains out "crosscheck:");
  Alcotest.(check bool) "no contradictions" true (contains out "0 contradiction(s)")

let test_exit_validate_clean () =
  let p = clean_mc () in
  Alcotest.(check int) "--validate=all" 0 (run [ "--validate=all"; p ]);
  Alcotest.(check int) "--validate=witness" 0 (run [ "--validate=witness"; p ]);
  Alcotest.(check int) "--validate=diff" 0 (run [ "--validate=diff"; p ]);
  (* The bare flag takes its default value; trailing position keeps the
     file from being parsed as the mode. *)
  Alcotest.(check int) "bare --validate" 0 (run [ p; "--validate" ])

let test_exit_werror () =
  let p = write_tmp "divzero.mc" "routine f(a) { x = 0; return a / x; }\n" in
  (* The guaranteed division by zero is a Warning-severity lint: reported
     but clean without --Werror, a failure with it. (Opportunity-tier lints
     like dead code are Info and never trip --Werror.) *)
  Alcotest.(check int) "--lint alone stays clean" 0 (run [ "--lint"; p ]);
  Alcotest.(check int) "--lint --Werror fails" 1 (run [ "--lint"; "--Werror"; p ]);
  let dead = write_tmp "dead.mc" "routine f(a) { dead = a * 37; return a; }\n" in
  Alcotest.(check int) "Info lints pass --Werror" 0 (run [ "--lint"; "--Werror"; dead ])

let test_exit_werror_overflow () =
  (* The other guaranteed division fault: min_int / -1 overflows the
     machine word (min_int on the 63-bit IR is -2^62, spelled without a
     negative-literal edge case). Same lint, same Warning severity. *)
  let p =
    write_tmp "ovf.mc"
      "routine f(a) { n = -4611686018427387903 - 1; d = -1; return n / d; }\n"
  in
  let code, out = run_capture [ "--lint"; p ] in
  Alcotest.(check int) "--lint alone stays clean" 0 code;
  Alcotest.(check bool)
    "overflow attributed to lint-div-by-zero" true
    (contains out "lint-div-by-zero" && contains out "overflows");
  Alcotest.(check int) "--lint --Werror fails" 1 (run [ "--lint"; "--Werror"; p ])

let test_rules_modes () =
  (* --rules=dump and --rules=verify are standalone: no input file. *)
  let code, out = run_capture [ "--rules=dump" ] in
  Alcotest.(check int) "--rules=dump exits 0" 0 code;
  Alcotest.(check bool)
    "dump prints the catalog" true
    (contains out "and-self" && contains out "demorgan-and" && contains out "->");
  let code, out = run_capture [ "--rules=verify" ] in
  Alcotest.(check int) "--rules=verify exits 0 on the shipped catalog" 0 code;
  Alcotest.(check bool)
    "verify reports a clean summary" true
    (contains out "0 failed" && contains out "0 fatal lints");
  (* --rules=off still optimizes, but without the catalog: the idempotent
     And survives in the output. *)
  let p = write_tmp "idem.mc" "routine f(a) { return a & a; }\n" in
  let code, out = run_capture [ "--rules=off"; p ] in
  Alcotest.(check int) "--rules=off exits 0" 0 code;
  Alcotest.(check bool) "catalog disabled: a & a survives" true (contains out "& ");
  let code, out = run_capture [ p ] in
  Alcotest.(check int) "default run exits 0" 0 code;
  Alcotest.(check bool) "catalog enabled: a & a simplified" false (contains out "& ");
  (* Without a file, every other mode is a usage error. *)
  Alcotest.(check int) "optimize without FILE is exit 2" 2 (run [ "--rules=off" ]);
  Alcotest.(check int) "unknown mode is exit 2" 2 (run [ "--rules=frobnicate" ])

let count_occurrences hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go acc i =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (acc + 1) (i + nn)
    else go acc (i + 1)
  in
  go 0 0

let test_trace_output () =
  let p = write_tmp "traced.mc" "routine f(a) { x = a + 1; y = a + 1; return x + y; }\n" in
  let trace = Filename.temp_file "gvnopt_cli" ".trace.json" in
  Alcotest.(check int) "--trace exits clean" 0 (run [ "--trace=" ^ trace; p ]);
  let ic = open_in_bin trace in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove trace;
  Alcotest.(check bool) "traceEvents array" true (contains doc "\"traceEvents\": [");
  Alcotest.(check bool) "nothing dropped" true
    (contains doc "\"otherData\": {\"dropped\": \"0\"}");
  (* Balanced stream: as many begins as ends, and at least the pass spans
     the CLI promises (ssa construction, the GVN engine, cleanup). *)
  let b = count_occurrences doc "\"ph\": \"B\"" and e = count_occurrences doc "\"ph\": \"E\"" in
  Alcotest.(check bool) "some spans recorded" true (b > 0);
  Alcotest.(check int) "begins match ends" b e;
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " span present") true
        (contains doc (Printf.sprintf "\"name\": \"%s\"" name)))
    [ "parse"; "ssa"; "gvn"; "pgvn.run"; "rewrite"; "dce"; "simplify-cfg" ]

let test_metrics_output () =
  let p = clean_mc () in
  let code, out = run_capture [ "--metrics"; p ] in
  Alcotest.(check int) "--metrics exits clean" 0 code;
  Alcotest.(check bool) "metrics section" true (contains out "--- metrics ---");
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " reported") true (contains out name))
    [ "pgvn.passes"; "pgvn.instrs"; "pgvn.table_probes"; "pgvn.arena.live"; "pgvn.run_ns" ]

let test_schedule_modes () =
  let p = clean_mc () in
  (* Bare --schedule defaults to the legality check; trailing position
     keeps the file from being parsed as the mode. *)
  Alcotest.(check int) "bare --schedule" 0 (run [ p; "--schedule" ]);
  let code, out = run_capture [ "--schedule=check"; p ] in
  Alcotest.(check int) "--schedule=check" 0 code;
  Alcotest.(check bool) "check summary line" true (contains out "schedule check: 0 violation(s)");
  let code, out = run_capture [ "--schedule=dump"; p ] in
  Alcotest.(check int) "--schedule=dump" 0 code;
  Alcotest.(check bool) "dump prints ranges" true (contains out "early b");
  Alcotest.(check bool) "dump prints stats" true (contains out "schedule:");
  (* The corpus LICM shape: the invariant add inside the loop is lintable. *)
  let licm =
    write_tmp "licm.mc"
      "routine f(a, n) { i = 0; s = 0; while (i < n) { s = s + a * 3; i = i + 1; } return s; }\n"
  in
  let code, out = run_capture [ "--schedule=lint"; licm ] in
  Alcotest.(check int) "--schedule=lint" 0 code;
  Alcotest.(check bool) "loop-invariant lint" true (contains out "lint-loop-invariant");
  Alcotest.(check int) "bad schedule mode" 2 (run [ "--schedule=bogus"; p ]);
  Alcotest.(check int) "--analyze and --schedule conflict" 2
    (run [ "--analyze"; "--schedule"; p ])

(* The parallel-service surface: --jobs batches, the --serve conflicts,
   and the --cache persisted tier. The pins here are the CLI contract; the
   library-level semantics live in test_par.ml. *)

let test_jobs_contract () =
  let p = clean_mc () in
  Alcotest.(check int) "--jobs=1" 0 (run [ "--jobs=1"; p ]);
  Alcotest.(check int) "--jobs=3" 0 (run [ "--jobs=3"; p ]);
  Alcotest.(check int) "--jobs=0 rejected" 2 (run [ "--jobs=0"; p ]);
  Alcotest.(check int) "negative jobs rejected" 2 (run [ "--jobs=-2"; p ]);
  Alcotest.(check int) "non-numeric jobs rejected" 2 (run [ "--jobs=many"; p ])

let test_jobs_deterministic_output () =
  (* A multi-file batch: parallel output must be byte-identical to the
     sequential run, files in argument order. *)
  let a = write_tmp "det_a.mc" "routine f(a) { x = a + 1; y = a + 1; return x * y; }\n" in
  let b = write_tmp "det_b.mc" "routine g(n) { if (n < 0) { return 0 - n; } return n; }\n" in
  let code1, seq = run_capture [ "--jobs=1"; a; b ] in
  let code2, par = run_capture [ "--jobs=2"; a; b ] in
  Alcotest.(check int) "sequential exit" 0 code1;
  Alcotest.(check int) "parallel exit" 0 code2;
  Alcotest.(check string) "byte-identical output" seq par

let test_serve_conflicts () =
  let p = clean_mc () in
  (* [--serve file.mc] parses the file as the socket path; binding refuses
     to clobber an existing non-socket file, preserving the old pin. *)
  Alcotest.(check int) "--serve with a FILE" 2 (run [ "--serve"; p ]);
  Alcotest.(check int) "--serve with --metrics" 2 (run [ "--serve"; "--metrics" ]);
  Alcotest.(check int) "--serve=PATH refuses a non-socket file" 2 (run [ "--serve=" ^ p ])

(* Client-side framing for the socket transport: 4-byte big-endian length,
   then the payload — the same wire format test_par.ml pins for stdin. *)
let put_frame oc payload =
  let len = String.length payload in
  output_byte oc ((len lsr 24) land 0xff);
  output_byte oc ((len lsr 16) land 0xff);
  output_byte oc ((len lsr 8) land 0xff);
  output_byte oc (len land 0xff);
  output_string oc payload;
  flush oc

let get_frame ic =
  let hdr = really_input_string ic 4 in
  let b i = Char.code hdr.[i] in
  really_input_string ic ((b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3)

let test_serve_socket_round_trip () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gvnopt_cli_%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists sock then Sys.remove sock;
  let null = Unix.openfile Filename.null [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process gvnopt [| gvnopt; "--serve=" ^ sock |] null null Unix.stderr
  in
  Unix.close null;
  (* The server binds before accepting: the socket file is the ready signal. *)
  let rec await n =
    if Sys.file_exists sock then ()
    else if n = 0 then Alcotest.fail "server never bound its socket"
    else begin
      Unix.sleepf 0.05;
      await (n - 1)
    end
  in
  await 100;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* The file appears at bind, a hair before listen: retry a refused
     connect rather than flaking on the race. *)
  let rec connect n =
    try Unix.connect fd (Unix.ADDR_UNIX sock)
    with Unix.Unix_error (Unix.ECONNREFUSED, _, _) when n > 0 ->
      Unix.sleepf 0.05;
      connect (n - 1)
  in
  connect 100;
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  put_frame oc "routine f(a) { return a + 1; }";
  let r = get_frame ic in
  Alcotest.(check char) "clean request status" '0' r.[0];
  Alcotest.(check bool) "framed body is the batch output" true (contains r "=== f ===");
  put_frame oc "routine broken( {";
  let r = get_frame ic in
  Alcotest.(check char) "parse-error status" '2' r.[0];
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  close_in ic;
  (* Worst status served becomes the exit code; the socket file is gone. *)
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "exits with the worst status" true (status = Unix.WEXITED 2);
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists sock)

(* The GCM surface: mode exit codes and output, determinism under --jobs,
   and the persisted cache never cross-serving across the flag. *)

let licm_mc () =
  write_tmp "gcm_licm.mc"
    "routine f(a, n) { i = 0; s = 0; while (i < n) { s = s + a * 3; i = i + 1; } return s; }\n"

let test_gcm_modes () =
  let p = licm_mc () in
  (* Bare --gcm defaults to the certified-and-diffed rewrite; trailing
     position keeps the file from being parsed as the mode. *)
  let code, out = run_capture [ p; "--gcm" ] in
  Alcotest.(check int) "bare --gcm" 0 code;
  Alcotest.(check bool) "motion summary" true
    (contains out "gcm: 1 value(s) moved (1 hoisted, 0 sunk)");
  Alcotest.(check bool) "behavioral diff ran" true
    (contains out "gcm diff: observably equivalent");
  let code, out = run_capture [ "--gcm=dump"; p ] in
  Alcotest.(check int) "--gcm=dump" 0 code;
  Alcotest.(check bool) "dump lists the hoist" true (contains out "-> b0 [hoist]");
  let code, out = run_capture [ "--gcm=check"; p ] in
  Alcotest.(check int) "--gcm=check" 0 code;
  Alcotest.(check bool) "check diffs the rewrite" true
    (contains out "gcm diff: observably equivalent");
  Alcotest.(check int) "bad gcm mode" 2 (run [ "--gcm=bogus"; p ]);
  Alcotest.(check int) "--gcm and --schedule conflict" 2 (run [ p; "--gcm"; "--schedule" ]);
  Alcotest.(check int) "--gcm and --analyze conflict" 2 (run [ p; "--gcm"; "--analyze" ]);
  Alcotest.(check int) "--gcm and --pred conflict" 2 (run [ p; "--gcm"; "--pred" ])

let test_gcm_jobs_deterministic () =
  (* The batch pin of test_jobs_deterministic_output, with motion on:
     parallel output must stay byte-identical to sequential. *)
  let a = licm_mc () in
  let b = write_tmp "gcm_det_b.mc" "routine g(n) { if (n < 0) { return 0 - n; } return n; }\n" in
  let code1, seq = run_capture [ "--gcm=check"; "--jobs=1"; a; b ] in
  let code2, par = run_capture [ "--gcm=check"; "--jobs=2"; a; b ] in
  Alcotest.(check int) "sequential exit" 0 code1;
  Alcotest.(check int) "parallel exit" 0 code2;
  Alcotest.(check string) "byte-identical output with --gcm" seq par

let test_gcm_cache_isolation () =
  (* One persisted cache, the same routine with and without --gcm: the
     flag is part of the fingerprint, so neither run is ever served the
     other's output. *)
  let p = licm_mc () in
  let cache = Filename.temp_file "gvnopt_cli" ".ccache" in
  Sys.remove cache;
  let code, plain_cold = run_capture [ "--cache=" ^ cache; p ] in
  Alcotest.(check int) "plain cold run" 0 code;
  let code, gcm_cold = run_capture [ "--cache=" ^ cache; "--gcm=dump"; p ] in
  Alcotest.(check int) "gcm cold run" 0 code;
  Alcotest.(check bool) "gcm run hoists" true (contains gcm_cold "[hoist]");
  Alcotest.(check bool) "plain run does not" false (contains plain_cold "[hoist]");
  let _, plain_warm = run_capture [ "--cache=" ^ cache; p ] in
  let _, gcm_warm = run_capture [ "--cache=" ^ cache; "--gcm=dump"; p ] in
  Alcotest.(check string) "plain warm identical to cold" plain_cold plain_warm;
  Alcotest.(check string) "gcm warm identical to cold" gcm_cold gcm_warm;
  Sys.remove cache

let test_pred_modes () =
  let chain =
    write_tmp "chain.mc"
      "routine c(a, b, c) { r = 0; if (a <= b) { if (b <= c) { if (a <= c) { r = 1; } } } \
       return r; }\n"
  in
  (* Bare --pred defaults to the cross-check; trailing position keeps the
     file from being parsed as the mode. *)
  let code, out = run_capture [ chain; "--pred" ] in
  Alcotest.(check int) "bare --pred" 0 code;
  Alcotest.(check bool) "crosscheck line" true (contains out "crosscheck:");
  Alcotest.(check bool) "no contradictions" true (contains out "0 contradiction(s)");
  let code, out = run_capture [ "--pred=stats"; chain ] in
  Alcotest.(check int) "--pred=stats" 0 code;
  Alcotest.(check bool) "counter line" true (contains out "pred: ");
  Alcotest.(check bool) "closure decided the chained guard" false (contains out "pred: 0 queries");
  let code, out = run_capture [ "--pred=dump"; chain ] in
  Alcotest.(check int) "--pred=dump" 0 code;
  Alcotest.(check bool) "facts section" true (contains out "--- dominating facts ---");
  Alcotest.(check int) "bad pred mode" 2 (run [ "--pred=bogus"; chain ]);
  Alcotest.(check int) "--pred and --analyze conflict" 2 (run [ chain; "--pred"; "--analyze" ]);
  Alcotest.(check int) "--pred and --schedule conflict" 2
    (run [ chain; "--pred"; "--schedule" ])

let test_cache_round_trip () =
  let p = clean_mc () in
  let cache = Filename.temp_file "gvnopt_cli" ".ccache" in
  Sys.remove cache;
  let code1, cold = run_capture [ "--cache=" ^ cache; p ] in
  Alcotest.(check int) "cold run" 0 code1;
  Alcotest.(check bool) "cache file written" true (Sys.file_exists cache);
  let code2, warm = run_capture [ "--cache=" ^ cache; p ] in
  Alcotest.(check int) "warm run" 0 code2;
  Alcotest.(check string) "cache hit answers identically" cold warm;
  (* Corruption degrades to a cold cache, never an error. *)
  let oc = open_out_bin cache in
  output_string oc "scribble";
  close_out oc;
  let code3, recovered = run_capture [ "--cache=" ^ cache; p ] in
  Alcotest.(check int) "corrupted cache still compiles" 0 code3;
  Alcotest.(check string) "recompiled output identical" cold recovered;
  Sys.remove cache

let test_exit_parse_error () =
  let p = write_tmp "broken.mc" "routine f( { this is not mini-C" in
  Alcotest.(check int) "parse error" 2 (run [ p ])

let test_exit_usage_error () =
  let p = clean_mc () in
  Alcotest.(check int) "unknown flag" 2 (run [ "--frobnicate"; p ]);
  Alcotest.(check int) "bad validate mode" 2 (run [ "--validate=bogus"; p ]);
  Alcotest.(check int) "nonexistent input" 2 (run [ "/nonexistent/no-such-file.mc" ])

let suite =
  [
    Alcotest.test_case "exit 0 on clean runs" `Quick test_exit_clean;
    Alcotest.test_case "--analyze mode exit codes" `Quick test_exit_analyze;
    Alcotest.test_case "--analyze=all output format" `Quick test_analyze_output;
    Alcotest.test_case "exit 0 under --validate" `Quick test_exit_validate_clean;
    Alcotest.test_case "exit 1 under --lint --Werror" `Quick test_exit_werror;
    Alcotest.test_case "min_int / -1 overflow lint under --Werror" `Quick
      test_exit_werror_overflow;
    Alcotest.test_case "--rules mode exit codes and output" `Quick test_rules_modes;
    Alcotest.test_case "--schedule mode exit codes and output" `Quick test_schedule_modes;
    Alcotest.test_case "--trace writes balanced Chrome JSON" `Quick test_trace_output;
    Alcotest.test_case "--metrics prints the engine snapshot" `Quick test_metrics_output;
    Alcotest.test_case "--jobs argument contract" `Quick test_jobs_contract;
    Alcotest.test_case "--jobs=2 output is byte-identical" `Quick test_jobs_deterministic_output;
    Alcotest.test_case "--serve flag conflicts" `Quick test_serve_conflicts;
    Alcotest.test_case "--serve=SOCKET round-trips over the socket" `Quick
      test_serve_socket_round_trip;
    Alcotest.test_case "--gcm mode exit codes and output" `Quick test_gcm_modes;
    Alcotest.test_case "--jobs=2 output is byte-identical with --gcm" `Quick
      test_gcm_jobs_deterministic;
    Alcotest.test_case "--cache never cross-serves across --gcm" `Quick test_gcm_cache_isolation;
    Alcotest.test_case "--pred mode exit codes and output" `Quick test_pred_modes;
    Alcotest.test_case "--cache persisted tier round-trips" `Quick test_cache_round_trip;
    Alcotest.test_case "exit 2 on parse errors" `Quick test_exit_parse_error;
    Alcotest.test_case "exit 2 on usage errors" `Quick test_exit_usage_error;
  ]

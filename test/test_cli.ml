(* The gvnopt driver's exit-code contract (documented in bin/gvnopt.ml):
   0 on a clean run, 1 on diagnostics at or above the failure threshold,
   2 on usage or parse errors. The binary is a declared test dependency, so
   it sits next to the test executable's directory in the build tree. *)

let gvnopt = Filename.concat (Filename.concat ".." "bin") "gvnopt.exe"

let write_tmp name contents =
  let path = Filename.concat (Filename.get_temp_dir_name ()) ("gvnopt_cli_" ^ name) in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let run args =
  Sys.command (Filename.quote_command gvnopt ~stdout:Filename.null ~stderr:Filename.null args)

let clean_mc () = write_tmp "clean.mc" "routine f(a) { return a + 1; }\n"

let test_exit_clean () =
  let p = clean_mc () in
  Alcotest.(check int) "plain run" 0 (run [ p ]);
  Alcotest.(check int) "--check" 0 (run [ "--check"; p ]);
  Alcotest.(check int) "--analyze" 0 (run [ "--analyze"; p ])

let test_exit_validate_clean () =
  let p = clean_mc () in
  Alcotest.(check int) "--validate=all" 0 (run [ "--validate=all"; p ]);
  Alcotest.(check int) "--validate=witness" 0 (run [ "--validate=witness"; p ]);
  Alcotest.(check int) "--validate=diff" 0 (run [ "--validate=diff"; p ]);
  (* The bare flag takes its default value; trailing position keeps the
     file from being parsed as the mode. *)
  Alcotest.(check int) "bare --validate" 0 (run [ p; "--validate" ])

let test_exit_werror () =
  let p = write_tmp "dead.mc" "routine f(a) { dead = a * 37; return a; }\n" in
  (* The dead instruction is a Warning-severity lint: reported but clean
     without --Werror, a failure with it. *)
  Alcotest.(check int) "--lint alone stays clean" 0 (run [ "--lint"; p ]);
  Alcotest.(check int) "--lint --Werror fails" 1 (run [ "--lint"; "--Werror"; p ])

let test_exit_parse_error () =
  let p = write_tmp "broken.mc" "routine f( { this is not mini-C" in
  Alcotest.(check int) "parse error" 2 (run [ p ])

let test_exit_usage_error () =
  let p = clean_mc () in
  Alcotest.(check int) "unknown flag" 2 (run [ "--frobnicate"; p ]);
  Alcotest.(check int) "bad validate mode" 2 (run [ "--validate=bogus"; p ]);
  Alcotest.(check int) "nonexistent input" 2 (run [ "/nonexistent/no-such-file.mc" ])

let suite =
  [
    Alcotest.test_case "exit 0 on clean runs" `Quick test_exit_clean;
    Alcotest.test_case "exit 0 under --validate" `Quick test_exit_validate_clean;
    Alcotest.test_case "exit 1 under --lint --Werror" `Quick test_exit_werror;
    Alcotest.test_case "exit 2 on parse errors" `Quick test_exit_parse_error;
    Alcotest.test_case "exit 2 on usage errors" `Quick test_exit_usage_error;
  ]

(* The verifier/linter itself: each checker must catch a deliberately
   corrupted function with the right check id and location, stay silent on
   well-formed IR, and find zero Error-severity diagnostics anywhere in the
   corpus — before optimization, after every pipeline pass (via
   [Pipeline.run_with] with [Options.check]), under every configuration
   preset. *)

let check_id d = d.Check.Diagnostic.check

let fires ?loc id f =
  List.exists
    (fun d ->
      check_id d = id && match loc with None -> true | Some l -> d.Check.Diagnostic.loc = l)
    (Check.run_all ~lint:true f)

let assert_fires ?loc id f =
  if not (fires ?loc id f) then
    Alcotest.failf "expected %s to fire; got: %s" id
      (String.concat "; "
         (List.map Check.Diagnostic.to_string (Check.run_all ~lint:true f)))

let assert_clean f =
  match Check.errors (Check.run_all f) with
  | [] -> ()
  | d :: _ -> Alcotest.failf "unexpected error: %s" (Check.Diagnostic.to_string d)

(* A well-formed diamond: b0 branches on its parameter to b1/b2, which merge
   at b3 in a φ; returns the φ. Returned with the ids the corruptions need. *)
let diamond () =
  let bld = Ir.Builder.create ~name:"diamond" ~nparams:1 in
  let b0 = Ir.Builder.add_block bld in
  let b1 = Ir.Builder.add_block bld in
  let b2 = Ir.Builder.add_block bld in
  let b3 = Ir.Builder.add_block bld in
  let p = Ir.Builder.param bld b0 0 in
  ignore (Ir.Builder.branch bld b0 p ~ift:b1 ~iff:b2);
  let x = Ir.Builder.binop bld b1 Ir.Types.Add p p in
  let e1 = Ir.Builder.jump bld b1 ~dst:b3 in
  let y = Ir.Builder.binop bld b2 Ir.Types.Mul p p in
  let e2 = Ir.Builder.jump bld b2 ~dst:b3 in
  let phi = Ir.Builder.phi bld b3 in
  Ir.Builder.set_phi_arg bld ~phi ~edge:e1 x;
  Ir.Builder.set_phi_arg bld ~phi ~edge:e2 y;
  Ir.Builder.ret bld b3 phi;
  let f = Ir.Builder.finish bld in
  (f, Ir.Builder.final_value bld phi, Ir.Builder.final_value bld y)

let find_phi f =
  let r = ref (-1) in
  for i = 0 to Ir.Func.num_instrs f - 1 do
    if Ir.Func.is_phi (Ir.Func.instr f i) then r := i
  done;
  !r

(* --- deliberate corruptions, each pinned to its check id --- *)

let test_clean_diamond () =
  let f, _, _ = diamond () in
  assert_clean f

let test_phi_arity () =
  let f, phi, _ = diamond () in
  let instrs =
    Array.mapi
      (fun i ins ->
        if i = phi then
          match ins with Ir.Func.Phi args -> Ir.Func.Phi [| args.(0) |] | x -> x
        else ins)
      f.Ir.Func.instrs
  in
  assert_fires ~loc:(Check.Diagnostic.Instr phi) "ssa-phi-arity" { f with Ir.Func.instrs }

let test_phi_arg_not_available () =
  (* The φ argument carried by the b1 edge is defined in b2: available on
     neither path. *)
  let f, phi, y = diamond () in
  let instrs =
    Array.mapi
      (fun i ins ->
        if i = phi then
          match ins with Ir.Func.Phi args -> Ir.Func.Phi [| y; args.(1) |] | x -> x
        else ins)
      f.Ir.Func.instrs
  in
  assert_fires ~loc:(Check.Diagnostic.Instr phi) "ssa-phi-arg-dominance"
    { f with Ir.Func.instrs }

let test_use_not_dominated () =
  (* A value defined in one branch arm, used in the other (the builder can
     express this: values are free-floating until laid out). *)
  let bld = Ir.Builder.create ~name:"bad" ~nparams:1 in
  let b0 = Ir.Builder.add_block bld in
  let b1 = Ir.Builder.add_block bld in
  let b2 = Ir.Builder.add_block bld in
  let p = Ir.Builder.param bld b0 0 in
  ignore (Ir.Builder.branch bld b0 p ~ift:b1 ~iff:b2);
  let x = Ir.Builder.binop bld b1 Ir.Types.Add p p in
  Ir.Builder.ret bld b1 x;
  Ir.Builder.ret bld b2 x;
  let f = Ir.Builder.finish bld in
  assert_fires "ssa-dominance" f;
  (* The legacy wrapper still raises on it. *)
  match Ssa.Verify.check f with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "Ssa.Verify.check accepted a non-dominating use"

let test_dangling_edge () =
  let f, _, _ = diamond () in
  let edges =
    Array.mapi
      (fun e (ed : Ir.Func.edge) ->
        if e = 0 then { ed with Ir.Func.dst = Ir.Func.num_blocks f + 5 } else ed)
      f.Ir.Func.edges
  in
  assert_fires ~loc:(Check.Diagnostic.Edge 0) "cfg-edge-endpoints" { f with Ir.Func.edges }

let test_edge_mirror_broken () =
  (* Swap the two successor slots of the branch block without updating the
     edge table: both mirror directions must object. *)
  let f, _, _ = diamond () in
  let blocks =
    Array.mapi
      (fun b (blk : Ir.Func.block) ->
        if b = 0 then
          { blk with Ir.Func.succs = [| blk.Ir.Func.succs.(1); blk.Ir.Func.succs.(0) |] }
        else blk)
      f.Ir.Func.blocks
  in
  let f' = { f with Ir.Func.blocks } in
  assert_fires "cfg-edge-src-mirror" f';
  assert_fires "cfg-succ-mirror" f'

let test_single_def_violated () =
  (* Lay the same Add out twice in its block. *)
  let f, _, _ = diamond () in
  let add = ref (-1) in
  Array.iteri
    (fun i ins -> match ins with Ir.Func.Binop (Ir.Types.Add, _, _) -> add := i | _ -> ())
    f.Ir.Func.instrs;
  let b = Ir.Func.block_of_instr f !add in
  let blocks =
    Array.mapi
      (fun bi (blk : Ir.Func.block) ->
        if bi = b then
          { blk with Ir.Func.instrs = Array.append [| !add |] blk.Ir.Func.instrs }
        else blk)
      f.Ir.Func.blocks
  in
  assert_fires ~loc:(Check.Diagnostic.Instr !add) "ssa-single-def" { f with Ir.Func.blocks }

let test_terminator_misplaced () =
  (* Drop the terminator from the end of the entry block (repeat the param
     instead): the block no longer ends in a terminator. *)
  let f, _, _ = diamond () in
  let blk0 = Ir.Func.block f 0 in
  let n = Array.length blk0.Ir.Func.instrs in
  let instrs' = Array.copy blk0.Ir.Func.instrs in
  instrs'.(n - 1) <- instrs'.(0);
  let blocks =
    Array.mapi
      (fun b (blk : Ir.Func.block) ->
        if b = 0 then { blk with Ir.Func.instrs = instrs' } else blk)
      f.Ir.Func.blocks
  in
  assert_fires ~loc:(Check.Diagnostic.Block 0) "cfg-terminator-missing"
    { f with Ir.Func.blocks }

let test_type_clash_param_range () =
  (* Parameter index 7 in a 1-parameter routine. *)
  let bld = Ir.Builder.create ~name:"clash" ~nparams:1 in
  let b0 = Ir.Builder.add_block bld in
  let p = Ir.Builder.param bld b0 7 in
  Ir.Builder.ret bld b0 p;
  let f = Ir.Builder.finish bld in
  assert_fires "type-param-range" f;
  Alcotest.(check bool) "it is an Error" true (Check.has_errors (Check.run_all f))

let test_type_opaque_arity () =
  let bld = Ir.Builder.create ~name:"arity" ~nparams:2 in
  let b0 = Ir.Builder.add_block bld in
  let a = Ir.Builder.param bld b0 0 in
  let b = Ir.Builder.param bld b0 1 in
  let x = Ir.Builder.opaque ~tag:7 bld b0 [ a ] in
  let y = Ir.Builder.opaque ~tag:7 bld b0 [ a; b ] in
  let s = Ir.Builder.binop bld b0 Ir.Types.Add x y in
  Ir.Builder.ret bld b0 s;
  let f = Ir.Builder.finish bld in
  assert_fires "type-opaque-arity" f;
  (* arity drift is a warning, not an error *)
  assert_clean f

let test_type_switch_case_dead () =
  let bld = Ir.Builder.create ~name:"swdead" ~nparams:2 in
  let b0 = Ir.Builder.add_block bld in
  let b1 = Ir.Builder.add_block bld in
  let b2 = Ir.Builder.add_block bld in
  let a = Ir.Builder.param bld b0 0 in
  let b = Ir.Builder.param bld b0 1 in
  let c = Ir.Builder.cmp bld b0 Ir.Types.Lt a b in
  ignore (Ir.Builder.switch bld b0 c ~cases:[ (0, b1); (5, b2) ] ~default:b2);
  let k1 = Ir.Builder.const bld b1 1 in
  Ir.Builder.ret bld b1 k1;
  let k2 = Ir.Builder.const bld b2 2 in
  Ir.Builder.ret bld b2 k2;
  let f = Ir.Builder.finish bld in
  assert_fires "type-switch-case-dead" f;
  assert_clean f

(* --- the lint tier --- *)

let test_lint_dead_instr () =
  let f = Helpers.func_of_src "routine f(a) { dead = a * 37; return a; }" in
  assert_fires "lint-dead-instr" f;
  let g = Transform.Dce.run f in
  Alcotest.(check bool) "clean after DCE" false (fires "lint-dead-instr" g)

let test_lint_trivial_phi () =
  (* Both φ slots carry the parameter: defined in the entry, so available on
     both edges — well-formed, but the φ merges nothing. *)
  let f, phi, _ = diamond () in
  let param = ref (-1) in
  Array.iteri
    (fun i ins -> match ins with Ir.Func.Param _ -> param := i | _ -> ())
    f.Ir.Func.instrs;
  let instrs =
    Array.mapi
      (fun i ins ->
        if i = phi then Ir.Func.Phi [| !param; !param |]
        else ins)
      f.Ir.Func.instrs
  in
  let f' = { f with Ir.Func.instrs } in
  assert_clean f';
  assert_fires ~loc:(Check.Diagnostic.Instr phi) "lint-trivial-phi" f'

let test_lint_const_branch_and_unreachable () =
  let f = Helpers.func_of_src "routine f(a) { x = a; if (1) { x = a + 1; } return x; }" in
  (* Lowering keeps the constant condition; GVN's unreachable-code analysis
     is what removes it. *)
  assert_fires "lint-const-branch" f;
  let g = Helpers.optimize Pgvn.Config.full f in
  Alcotest.(check bool) "clean after optimization" false (fires "lint-const-branch" g)

let test_lint_empty_block () =
  let bld = Ir.Builder.create ~name:"fwd" ~nparams:0 in
  let b0 = Ir.Builder.add_block bld in
  let b1 = Ir.Builder.add_block bld in
  let b2 = Ir.Builder.add_block bld in
  ignore (Ir.Builder.jump bld b0 ~dst:b1);
  ignore (Ir.Builder.jump bld b1 ~dst:b2);
  let k = Ir.Builder.const bld b2 4 in
  Ir.Builder.ret bld b2 k;
  let f = Ir.Builder.finish bld in
  assert_fires ~loc:(Check.Diagnostic.Block 1) "lint-empty-block" f;
  let g = Transform.Simplify_cfg.fixpoint f in
  Alcotest.(check bool) "clean after simplify-cfg" false (fires "lint-empty-block" g)

let test_lint_critical_edge () =
  (* b0 branches to b1 and b2; b1 falls through to b2: the edge b0→b2 has a
     branching source and a merging destination — critical. *)
  let bld = Ir.Builder.create ~name:"crit" ~nparams:1 in
  let b0 = Ir.Builder.add_block bld in
  let b1 = Ir.Builder.add_block bld in
  let b2 = Ir.Builder.add_block bld in
  let p = Ir.Builder.param bld b0 0 in
  let _, ef = Ir.Builder.branch bld b0 p ~ift:b1 ~iff:b2 in
  let x = Ir.Builder.binop bld b1 Ir.Types.Add p p in
  let e1 = Ir.Builder.jump bld b1 ~dst:b2 in
  let phi = Ir.Builder.phi bld b2 in
  Ir.Builder.set_phi_arg bld ~phi ~edge:ef p;
  Ir.Builder.set_phi_arg bld ~phi ~edge:e1 x;
  Ir.Builder.ret bld b2 phi;
  let f = Ir.Builder.finish bld in
  (* Pin the check id and the location: the diagnostic must sit on the
     b0→b2 edge, not on either block. *)
  let crit = ref (-1) in
  Array.iteri
    (fun e (ed : Ir.Func.edge) ->
      if ed.Ir.Func.src = b0 && ed.Ir.Func.dst = b2 then crit := e)
    f.Ir.Func.edges;
  assert_fires ~loc:(Check.Diagnostic.Edge !crit) "lint-critical-edge" f;
  (* A diamond splits all merges behind dedicated blocks: no critical edge. *)
  let g, _, _ = diamond () in
  Alcotest.(check bool) "diamond has no critical edge" false (fires "lint-critical-edge" g)

(* --- the semantic lint sub-tier (interval-analysis-backed) --- *)

let severity_of id f =
  List.find_map
    (fun d -> if check_id d = id then Some d.Check.Diagnostic.severity else None)
    (Check.run_all ~lint:true f)

let cir_of_src src = Ir.Lower.lower_routine (List.hd (Ir.Parser.parse_program src))
let fires_cir id c = List.exists (fun d -> check_id d = id) (Check.Lint.run_cir c)

let test_lint_div_by_zero () =
  let f = Helpers.func_of_src "routine f(a) { x = 0; return a / x; }" in
  assert_fires "lint-div-by-zero" f;
  Alcotest.(check bool) "bug tier: Warning severity" true
    (severity_of "lint-div-by-zero" f = Some Check.Diagnostic.Warning);
  let g = Helpers.func_of_src "routine g(a) { r = 0; if (a > 0) { r = 10 / a; } return r; }" in
  Alcotest.(check bool) "guarded divide is clean" false (fires "lint-div-by-zero" g)

let test_lint_use_uninit () =
  let pos = cir_of_src "routine f(a) { return x + a; }" in
  Alcotest.(check bool) "never-assigned read fires" true (fires_cir "lint-use-uninit" pos);
  (* Assigned on *some* path: a may-analysis must stay silent (the read is
     only conditionally uninitialized, which the lint does not claim). *)
  let neg = cir_of_src "routine g(a) { if (a > 0) { x = 1; } return x; }" in
  Alcotest.(check bool) "may-assigned read is clean" false (fires_cir "lint-use-uninit" neg);
  let neg2 = cir_of_src "routine h(a) { x = 0; return x + a; }" in
  Alcotest.(check bool) "assigned read is clean" false (fires_cir "lint-use-uninit" neg2)

let test_lint_branch_decided () =
  (* The inner guard is implied by the dominating one: always taken. *)
  let f =
    Helpers.func_of_src
      "routine f(a) { r = 0; if (a > 5) { if (a > 2) { r = 1; } } return r; }"
  in
  assert_fires "lint-branch-decided" f;
  let g = Helpers.func_of_src "routine g(a) { r = 0; if (a > 5) { r = 1; } return r; }" in
  Alcotest.(check bool) "an open guard is clean" false (fires "lint-branch-decided" g)

let test_lint_absint_unreachable () =
  (* Contradictory nested guards: the inner body is structurally reachable
     but the interval semantics proves it never executes. *)
  let f =
    Helpers.func_of_src
      "routine f(a) { r = 0; if (a > 5) { if (a < 3) { r = 9; } } return r; }"
  in
  assert_fires "lint-absint-unreachable" f;
  let g, _, _ = diamond () in
  Alcotest.(check bool) "a live diamond is clean" false (fires "lint-absint-unreachable" g)

let test_lint_contradictory_path () =
  (* A relational contradiction — a < b together with b < a — is invisible
     to one-value interval refinement but the fact closure sees it, so the
     Warning fires (and lint-absint-unreachable does not: exec stays true). *)
  let f =
    Helpers.func_of_src
      "routine f(a, b) { r = 0; if (a < b) { if (b < a) { r = 9; } } return r; }"
  in
  assert_fires "lint-contradictory-path" f;
  Alcotest.(check bool)
    "severity is Warning" true
    (List.exists
       (fun d ->
         check_id d = "lint-contradictory-path"
         && d.Check.Diagnostic.severity = Check.Diagnostic.Warning)
       (Check.run_all ~lint:true f));
  (* A constant contradiction the interval tier already proves dead is
     lint-absint-unreachable's territory: the Warning stays silent. *)
  let g =
    Helpers.func_of_src
      "routine g(a) { r = 0; if (a > 5) { if (a < 3) { r = 9; } } return r; }"
  in
  Alcotest.(check bool) "interval-proven block is not re-flagged" false
    (fires "lint-contradictory-path" g);
  let h = Helpers.func_of_src "routine h(a, b) { r = 0; if (a < b) { r = 1; } return r; }" in
  Alcotest.(check bool) "an open relational guard is clean" false
    (fires "lint-contradictory-path" h)

let test_lint_redundant_branch () =
  (* Transitivity — a <= b and b <= c imply a <= c — needs two facts at
     once, beyond both intervals (lint-branch-decided) and the single-fact
     walk; only the closure decides it. *)
  let f =
    Helpers.func_of_src
      "routine f(a, b, c) { r = 0; if (a <= b) { if (b <= c) { if (a <= c) { r = 1; } } } \
       return r; }"
  in
  assert_fires "lint-redundant-branch" f;
  Alcotest.(check bool) "interval tier alone does not see it" false
    (fires "lint-branch-decided" f);
  let g =
    Helpers.func_of_src
      "routine g(a, b) { r = 0; if (a <= b) { if (b <= a) { r = 1; } } return r; }"
  in
  Alcotest.(check bool) "an undecided guard is clean" false (fires "lint-redundant-branch" g)

let test_lint_dead_store () =
  (* y's only user sits behind a self-contradictory comparison: structural
     liveness keeps it (so lint-dead-instr stays silent), the sparse
     executable-sub-CFG liveness does not. *)
  let f =
    Helpers.func_of_src "routine f(a) { y = a + 1; if (a != a) { return y; } return 0; }"
  in
  let y = ref (-1) in
  Array.iteri
    (fun i ins ->
      match ins with Ir.Func.Binop (Ir.Types.Add, _, _) -> y := i | _ -> ())
    f.Ir.Func.instrs;
  assert_fires ~loc:(Check.Diagnostic.Instr !y) "lint-dead-store" f;
  Alcotest.(check bool) "dead-instr does not fire on the store" false
    (fires ~loc:(Check.Diagnostic.Instr !y) "lint-dead-instr" f);
  let g = Helpers.func_of_src "routine g(a) { y = a + 1; if (a > 0) { return y; } return 0; }" in
  Alcotest.(check bool) "a reachable use is clean" false (fires "lint-dead-store" g)

let test_lint_werror_clean_everywhere () =
  (* The --Werror contract: nothing above Info anywhere in the hand-written
     corpus (both lint tiers) or the ten-benchmark suite. *)
  let no_warnings name ds =
    match
      List.filter (fun d -> d.Check.Diagnostic.severity <> Check.Diagnostic.Info) ds
    with
    | [] -> ()
    | d :: _ -> Alcotest.failf "%s: %s" name (Check.Diagnostic.to_string d)
  in
  List.iter
    (fun (name, src) ->
      List.iter
        (fun r -> no_warnings name (Check.Lint.run_cir (Ir.Lower.lower_routine r)))
        (Ir.Parser.parse_program src);
      no_warnings name (Check.Lint.run (Helpers.func_of_src src)))
    Workload.Corpus.all_named;
  List.iter
    (fun ((b : Workload.Suite.benchmark), funcs) ->
      List.iter (fun f -> no_warnings b.Workload.Suite.name (Check.Lint.run f)) funcs)
    (Workload.Suite.all ~scale:0.1 ())

(* --- corpus sweeps: zero Error diagnostics anywhere --- *)

let test_corpus_clean_all_presets () =
  List.iter
    (fun (name, src) ->
      let f = Helpers.func_of_src src in
      assert_clean f;
      List.iter
        (fun (cname, config) ->
          match
            let opts =
              Transform.Pipeline.Options.(default |> with_config config |> with_check true)
            in
            Transform.Pipeline.run_list opts (Transform.Pipeline.standard_passes opts) f
          with
          | r -> assert_clean r.Transform.Pipeline.func
          | exception Transform.Pipeline.Broken_invariant { pass; diagnostics } ->
              Alcotest.failf "%s under %s: pass %s broke %s" name cname pass
                (match diagnostics with
                | d :: _ -> Check.Diagnostic.to_string d
                | [] -> "?"))
        Helpers.all_configs)
    Workload.Corpus.all_named

let test_benchmark_suite_clean () =
  (* The ten-benchmark corpus under the full and pessimistic presets, with
     the verifier after every pass. *)
  List.iter
    (fun ((b : Workload.Suite.benchmark), funcs) ->
      List.iter
        (fun f ->
          assert_clean f;
          List.iter
            (fun config ->
              match
                let opts =
                  Transform.Pipeline.Options.(
                    default |> with_config config |> with_rounds 1 |> with_check true)
                in
                Transform.Pipeline.run_list opts (Transform.Pipeline.standard_passes opts) f
              with
              | r -> assert_clean r.Transform.Pipeline.func
              | exception Transform.Pipeline.Broken_invariant { pass; diagnostics } ->
                  Alcotest.failf "%s: pass %s broke %s" b.Workload.Suite.name pass
                    (match diagnostics with
                    | d :: _ -> Check.Diagnostic.to_string d
                    | [] -> "?"))
            [ Pgvn.Config.full; Pgvn.Config.pessimistic ])
        funcs)
    (Workload.Suite.all ~scale:0.1 ())

let prop_generated_pipeline_checked =
  QCheck.Test.make ~name:"checked pipeline holds invariants on generated programs"
    ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"c" () in
      let r =
        let opts = Transform.Pipeline.Options.(default |> with_check true) in
        Transform.Pipeline.run_list opts (Transform.Pipeline.standard_passes opts) f
      in
      not (Check.has_errors (Check.run_all r.Transform.Pipeline.func)))

let test_report_order () =
  (* Errors sort before warnings regardless of discovery order. *)
  let ds =
    [
      Check.Diagnostic.warning ~check:"lint-dead-instr" ~loc:(Check.Diagnostic.Instr 1) "w";
      Check.Diagnostic.error ~check:"ssa-dominance" ~loc:(Check.Diagnostic.Instr 9) "e";
      Check.Diagnostic.info ~check:"cfg-critical-edge" ~loc:(Check.Diagnostic.Edge 0) "i";
    ]
  in
  match Check.sort ds with
  | { Check.Diagnostic.severity = Check.Diagnostic.Error; _ }
    :: { Check.Diagnostic.severity = Check.Diagnostic.Warning; _ }
    :: { Check.Diagnostic.severity = Check.Diagnostic.Info; _ } :: [] ->
      ()
  | _ -> Alcotest.fail "sort did not order by severity"

let suite =
  [
    Alcotest.test_case "well-formed diamond is clean" `Quick test_clean_diamond;
    Alcotest.test_case "phi arity mismatch" `Quick test_phi_arity;
    Alcotest.test_case "phi argument not available on its edge" `Quick
      test_phi_arg_not_available;
    Alcotest.test_case "use not dominated by definition" `Quick test_use_not_dominated;
    Alcotest.test_case "dangling edge" `Quick test_dangling_edge;
    Alcotest.test_case "edge mirror broken" `Quick test_edge_mirror_broken;
    Alcotest.test_case "single definition violated" `Quick test_single_def_violated;
    Alcotest.test_case "terminator missing" `Quick test_terminator_misplaced;
    Alcotest.test_case "type clash: parameter range" `Quick test_type_clash_param_range;
    Alcotest.test_case "type: opaque arity drift" `Quick test_type_opaque_arity;
    Alcotest.test_case "type: dead boolean switch case" `Quick test_type_switch_case_dead;
    Alcotest.test_case "lint: dead pure instruction" `Quick test_lint_dead_instr;
    Alcotest.test_case "lint: trivial phi" `Quick test_lint_trivial_phi;
    Alcotest.test_case "lint: constant branch" `Quick test_lint_const_branch_and_unreachable;
    Alcotest.test_case "lint: forwarder block" `Quick test_lint_empty_block;
    Alcotest.test_case "lint: critical edge" `Quick test_lint_critical_edge;
    Alcotest.test_case "lint: guaranteed division by zero" `Quick test_lint_div_by_zero;
    Alcotest.test_case "lint: provably-uninitialized read" `Quick test_lint_use_uninit;
    Alcotest.test_case "lint: branch decided by guards" `Quick test_lint_branch_decided;
    Alcotest.test_case "lint: semantically unreachable block" `Quick
      test_lint_absint_unreachable;
    Alcotest.test_case "lint: dead store (sparse liveness)" `Quick test_lint_dead_store;
    Alcotest.test_case "lint: contradictory path conditions" `Quick
      test_lint_contradictory_path;
    Alcotest.test_case "lint: branch decided by the fact closure" `Quick
      test_lint_redundant_branch;
    Alcotest.test_case "lints stay below --Werror on corpus and benchmarks" `Quick
      test_lint_werror_clean_everywhere;
    Alcotest.test_case "corpus clean under every preset" `Quick test_corpus_clean_all_presets;
    Alcotest.test_case "benchmark suite clean (full, pessimistic)" `Quick
      test_benchmark_suite_clean;
    QCheck_alcotest.to_alcotest prop_generated_pipeline_checked;
    Alcotest.test_case "diagnostics sort by severity" `Quick test_report_order;
  ]

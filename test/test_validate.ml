(* The translation validator: the independent oracle's partition, the
   witness audit (Engine 1), the behavioral diff (Engine 2), and their
   integration into the pipeline.

   The negative tests are the heart of the suite: hand-written miscompile
   mutants — a wrong leader, a dropped predicate (branch folded although the
   edge is taken), a wrong constant, a bogus φ collapse, a swapped back-edge
   φ argument — must each be rejected with the right check id and the
   precise pre-pass location. *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let find_instrs p (f : Ir.Func.t) =
  let acc = ref [] in
  Array.iteri (fun i ins -> if p ins then acc := i :: !acc) f.Ir.Func.instrs;
  List.rev !acc

(* The value returned by the first Return instruction. *)
let return_value (f : Ir.Func.t) =
  match
    find_instrs (function Ir.Func.Return _ -> true | _ -> false) f
    |> List.map (fun i ->
           match f.Ir.Func.instrs.(i) with Ir.Func.Return v -> v | _ -> assert false)
  with
  | v :: _ -> v
  | [] -> Alcotest.fail "no return instruction"

let has_error_diag ~check ~loc (r : Validate.Audit.report) =
  List.exists
    (fun d ->
      d.Check.Diagnostic.severity = Check.Diagnostic.Error
      && d.Check.Diagnostic.check = check
      && d.Check.Diagnostic.loc = loc)
    r.Validate.Audit.diagnostics

(* --- the oracle ------------------------------------------------------- *)

let test_oracle_congruence () =
  let f = Helpers.func_of_src "routine f(a, b) { x = a + b; y = a + b; return x - y; }" in
  let o = Validate.Oracle.run f in
  (match find_instrs (function Ir.Func.Binop (Ir.Types.Add, _, _) -> true | _ -> false) f with
  | [ x; y ] ->
      Alcotest.(check bool) "the two a+b are congruent" true (Validate.Oracle.congruent o x y)
  | _ -> Alcotest.fail "expected exactly two adds");
  Alcotest.(check (option int)) "x - y folds to 0" (Some 0)
    (Validate.Oracle.constant o (return_value f))

let test_oracle_reachability () =
  let f = Helpers.func_of_src "routine f(a) { r = 1; if (2 == 3) { r = f0(a); } return r; }" in
  let o = Validate.Oracle.run f in
  (match find_instrs (function Ir.Func.Opaque _ -> true | _ -> false) f with
  | [ opq ] ->
      Alcotest.(check bool) "dead guard's block is unreachable" false
        (Validate.Oracle.block_reachable o (Ir.Func.block_of_instr f opq))
  | _ -> Alcotest.fail "expected exactly one opaque call");
  Alcotest.(check (option int)) "the return is the constant 1" (Some 1)
    (Validate.Oracle.constant o (return_value f))

let test_oracle_cyclic () =
  (* The classic optimistic case: two lockstep counters are congruent, so
     their difference is 0 — provable only if the φs are numbered
     optimistically through the back edge. *)
  let f =
    Helpers.func_of_src
      "routine f(n) { i = 0; j = 0; while (i < n) { i = i + 1; j = j + 1; } return i - j; }"
  in
  let o = Validate.Oracle.run f in
  Alcotest.(check (option int)) "i - j is 0 through the loop" (Some 0)
    (Validate.Oracle.constant o (return_value f));
  Alcotest.(check bool) "took more than one round" true (Validate.Oracle.rounds o > 1)

let test_oracle_identities () =
  let f = Helpers.func_of_src "routine f(a) { x = a + 0; z = a - a; return x + z; }" in
  let o = Validate.Oracle.run f in
  let param =
    match find_instrs (function Ir.Func.Param 0 -> true | _ -> false) f with
    | [ p ] -> p
    | _ -> Alcotest.fail "expected one param"
  in
  (match find_instrs (function Ir.Func.Binop (Ir.Types.Add, _, _) -> true | _ -> false) f with
  | x :: _ ->
      Alcotest.(check bool) "a + 0 is a" true (Validate.Oracle.congruent o x param)
  | [] -> Alcotest.fail "expected an add");
  (match find_instrs (function Ir.Func.Binop (Ir.Types.Sub, _, _) -> true | _ -> false) f with
  | [ z ] -> Alcotest.(check (option int)) "a - a is 0" (Some 0) (Validate.Oracle.constant o z)
  | _ -> Alcotest.fail "expected one sub");
  Alcotest.(check bool) "x + z collapses to a" true
    (Validate.Oracle.congruent o (return_value f) param)

(* --- Engine 1: the audit on real rewrites ------------------------------ *)

let test_audit_corpus_clean () =
  (* Every hand-written corpus routine, under every configuration: the
     engine's own witnesses must never be refuted. *)
  List.iter
    (fun (name, src) ->
      let f = Helpers.func_of_src src in
      List.iter
        (fun (cname, config) ->
          let st = Pgvn.Driver.run config f in
          let _, witnesses = Transform.Apply.rebuild_witnessed st f in
          let r = Validate.Audit.run ~pass:cname f witnesses in
          if not (Validate.Audit.ok r) then
            Alcotest.failf "%s under %s: %d rewrites rejected" name cname
              r.Validate.Audit.rejected)
        Helpers.all_configs)
    Workload.Corpus.all_named

let test_audit_precision_win () =
  (* Predicate inference proves a == b inside the guard — beyond the oracle,
     so the audit must file the rewrites as precision wins, not errors. *)
  let f =
    Helpers.func_of_src
      "routine g(x, y) { r = 0; if (x == y) { a = x + 1; b = y + 1; r = a - b; } return r; }"
  in
  let st = Pgvn.Driver.run Pgvn.Config.full f in
  let _, witnesses = Transform.Apply.rebuild_witnessed st f in
  let r = Validate.Audit.run ~pass:"gvn#1" f witnesses in
  Alcotest.(check int) "nothing rejected" 0 r.Validate.Audit.rejected;
  Alcotest.(check bool) "some rewrites beyond the oracle" true (r.Validate.Audit.unproven > 0);
  Alcotest.(check bool) "precision wins reported as Info" true
    (List.exists
       (fun d ->
         d.Check.Diagnostic.severity = Check.Diagnostic.Info
         && d.Check.Diagnostic.check = "validate-precision-win")
       r.Validate.Audit.diagnostics)

(* --- Engine 1: miscompile mutants -------------------------------------- *)

let straightline () = Helpers.func_of_src "routine f(a, b) { x = a + 1; y = b + 2; return x + y; }"

let xy f =
  match find_instrs (function Ir.Func.Binop (Ir.Types.Add, _, _) -> true | _ -> false) f with
  | x :: y :: _ -> (x, y)
  | _ -> Alcotest.fail "expected two adds"

let test_mutant_wrong_leader () =
  (* Claim y (= b+2) is congruent to x (= a+1): refuted concretely. *)
  let f = straightline () in
  let x, y = xy f in
  let w = Validate.Witness.Replace { v = y; leader = x; cid = 0 } in
  let r = Validate.Audit.run ~pass:"gvn#1" f [ w ] in
  Alcotest.(check int) "rejected" 1 r.Validate.Audit.rejected;
  Alcotest.(check bool) "diagnostic at the rewritten instr" true
    (has_error_diag ~check:"validate-replace" ~loc:(Check.Diagnostic.Instr y) r)

let test_mutant_leader_out_of_scope () =
  (* Claim x is congruent to the later y: statically rejected — the leader's
     definition does not dominate the use. *)
  let f = straightline () in
  let x, y = xy f in
  let r =
    Validate.Audit.run ~pass:"gvn#1" f [ Validate.Witness.Replace { v = x; leader = y; cid = 0 } ]
  in
  Alcotest.(check int) "rejected" 1 r.Validate.Audit.rejected;
  match r.Validate.Audit.outcomes with
  | [ { verdict = Validate.Audit.Rejected why; _ } ] ->
      Alcotest.(check bool) "names the dominance violation" true (contains why "dominate")
  | _ -> Alcotest.fail "expected one rejected outcome"

let test_mutant_wrong_constant () =
  let f = straightline () in
  let x, _ = xy f in
  let r =
    Validate.Audit.run ~pass:"gvn#1" f [ Validate.Witness.Fold_const { v = x; c = 99; cid = 0 } ]
  in
  Alcotest.(check int) "rejected" 1 r.Validate.Audit.rejected;
  Alcotest.(check bool) "diagnostic at the folded instr" true
    (has_error_diag ~check:"validate-constant" ~loc:(Check.Diagnostic.Instr x) r)

let guarded () = Helpers.func_of_src "routine f(a) { r = 1; if (a > 0) { r = 2; } return r; }"

let branch_true_edge f =
  match find_instrs (function Ir.Func.Branch _ -> true | _ -> false) f with
  | [ br ] -> (Ir.Func.block f (Ir.Func.block_of_instr f br)).Ir.Func.succs.(0)
  | _ -> Alcotest.fail "expected one branch"

let test_mutant_dropped_predicate () =
  (* Fold the a > 0 branch as if its true edge were unreachable: the edge is
     taken whenever a > 0, so the audit must refute the fold. *)
  let f = guarded () in
  let e = branch_true_edge f in
  let r = Validate.Audit.run ~pass:"gvn#1" f [ Validate.Witness.Drop_edge { edge = e } ] in
  Alcotest.(check int) "rejected" 1 r.Validate.Audit.rejected;
  Alcotest.(check bool) "diagnostic at the folded edge" true
    (has_error_diag ~check:"validate-edge-unreachable" ~loc:(Check.Diagnostic.Edge e) r)

let test_mutant_dropped_live_block () =
  let f = guarded () in
  let b = (Ir.Func.edge f (branch_true_edge f)).Ir.Func.dst in
  let r = Validate.Audit.run ~pass:"gvn#1" f [ Validate.Witness.Drop_block { block = b } ] in
  Alcotest.(check int) "rejected" 1 r.Validate.Audit.rejected;
  Alcotest.(check bool) "diagnostic at the dropped block" true
    (has_error_diag ~check:"validate-block-unreachable" ~loc:(Check.Diagnostic.Block b) r)

let test_mutant_bogus_phi_collapse () =
  (* Collapse the join φ to its then-side argument, claiming the other
     incoming edge is dead: refuted whenever a <= 0. *)
  let f = guarded () in
  let phi, args, preds =
    let found = ref None in
    Array.iteri
      (fun i ins ->
        match ins with
        | Ir.Func.Phi args when Array.length args = 2 ->
            found := Some (i, args, (Ir.Func.block f (Ir.Func.block_of_instr f i)).Ir.Func.preds)
        | _ -> ())
      f.Ir.Func.instrs;
    match !found with Some x -> x | None -> Alcotest.fail "expected a 2-input phi"
  in
  (* Keep the argument carried by the then-side edge (the one whose source
     is not the entry block). *)
  let keep_ix =
    if (Ir.Func.edge f preds.(0)).Ir.Func.src <> Ir.Func.entry then 0 else 1
  in
  let w =
    Validate.Witness.Collapse_phi
      { phi; arg = args.(keep_ix); kept_edge = preds.(keep_ix) }
  in
  let r = Validate.Audit.run ~pass:"gvn#1" f [ w ] in
  Alcotest.(check int) "rejected" 1 r.Validate.Audit.rejected;
  Alcotest.(check bool) "diagnostic at the phi" true
    (has_error_diag ~check:"validate-phi-collapse" ~loc:(Check.Diagnostic.Instr phi) r)

(* --- Engine 2: behavioral diff with pass attribution ------------------- *)

let test_equiv_phi_arg_swap () =
  (* The canonical silent miscompile: swap a loop header φ's entry and
     back-edge arguments. Structure is untouched, so only the behavioral
     engine can see it — and it must blame the pass instance. *)
  let f =
    Helpers.func_of_src
      "routine m(n, a, b) { x = a; i = 0; while (i < n) { x = b; i = i + 1; } return x; }"
  in
  let target = ref (-1) in
  Array.iteri
    (fun i ins ->
      match ins with
      | Ir.Func.Phi args
        when Array.length args = 2
             && Array.for_all
                  (fun a ->
                    match f.Ir.Func.instrs.(a) with Ir.Func.Param _ -> true | _ -> false)
                  args ->
          target := i
      | _ -> ())
    f.Ir.Func.instrs;
  if !target < 0 then Alcotest.fail "expected the x = phi(a, b) header phi";
  let mutant =
    {
      f with
      Ir.Func.instrs =
        Array.mapi
          (fun i ins ->
            match ins with
            | Ir.Func.Phi args when i = !target -> Ir.Func.Phi [| args.(1); args.(0) |]
            | _ -> ins)
          f.Ir.Func.instrs;
    }
  in
  let r = Validate.Equiv.check ~pass:"gvn#1" f mutant in
  Alcotest.(check bool) "mismatch detected" false (Validate.Equiv.ok r);
  Alcotest.(check string) "blamed pass instance" "gvn#1" r.Validate.Equiv.pass;
  match Validate.Equiv.diagnostics r with
  | d :: _ ->
      Alcotest.(check bool) "message attributes the pass" true
        (contains d.Check.Diagnostic.message "gvn#1");
      Alcotest.(check bool) "message names the routine" true
        (contains d.Check.Diagnostic.message "m")
  | [] -> Alcotest.fail "expected a diagnostic"

let test_equiv_clean_on_identity () =
  let f = guarded () in
  let r = Validate.Equiv.check ~pass:"noop#1" f f in
  Alcotest.(check bool) "identical functions agree" true (Validate.Equiv.ok r);
  Alcotest.(check bool) "battery actually ran" true (r.Validate.Equiv.runs > 0)

(* --- pipeline and report integration ----------------------------------- *)

let test_pipeline_validates_corpus () =
  List.iter
    (fun (name, src) ->
      let f = Helpers.func_of_src src in
      List.iter
        (fun (cname, config) ->
          let r =
            let opts =
              Transform.Pipeline.Options.(
                default |> with_config config |> with_rounds 1 |> with_validate Validate.All)
            in
            Transform.Pipeline.run_list opts (Transform.Pipeline.standard_passes opts) f
          in
          match r.Transform.Pipeline.validation with
          | None -> Alcotest.failf "%s under %s: no validation report" name cname
          | Some v ->
              if not (Validate.Report.clean v) then
                Alcotest.failf "%s under %s: validator rejected a pass" name cname)
        Helpers.all_configs)
    Workload.Corpus.all_named

let test_pipeline_validates_suite () =
  (* The ten-benchmark corpus, certified under every preset. *)
  List.iter
    (fun ((b : Workload.Suite.benchmark), funcs) ->
      List.iter
        (fun f ->
          List.iter
            (fun (cname, config) ->
              let r =
                let opts =
                  Transform.Pipeline.Options.(
                    default |> with_config config |> with_rounds 1
                    |> with_validate Validate.All)
                in
                Transform.Pipeline.run_list opts (Transform.Pipeline.standard_passes opts) f
              in
              match r.Transform.Pipeline.validation with
              | Some v when Validate.Report.clean v -> ()
              | _ -> Alcotest.failf "%s/%s under %s: validation failed" b.Workload.Suite.name
                       f.Ir.Func.name cname)
            Helpers.all_configs)
        funcs)
    (Workload.Suite.all ~scale:0.05 ())

let test_validation_report_shape () =
  let f = Workload.Generator.func ~seed:4242 ~name:"w" () in
  let r =
    let opts = Transform.Pipeline.Options.(default |> with_validate Validate.All) in
    Transform.Pipeline.run_list opts (Transform.Pipeline.standard_passes opts) f
  in
  match r.Transform.Pipeline.validation with
  | None -> Alcotest.fail "expected a validation report"
  | Some v ->
      Alcotest.(check bool) "per-pass entries recorded" true (List.length v.Validate.Report.passes > 0);
      Alcotest.(check bool) "overhead accounted" true (Validate.Report.overhead_seconds v >= 0.0);
      let t = Validate.Report.totals v in
      Alcotest.(check bool) "behavioral runs executed" true (t.Validate.Report.equiv_runs > 0);
      Alcotest.(check int) "no mismatches" 0 t.Validate.Report.mismatches;
      Alcotest.(check int) "no rejections" 0 t.Validate.Report.rejected;
      Alcotest.(check bool) "report is clean" true (Validate.Report.clean v)

let test_pipeline_raises_on_refuted_pass () =
  (* A pipeline whose GVN pass were to emit a refuted witness must raise
     Validation_failed. Simulate by auditing a poisoned witness list and
     checking the pipeline's public rejection path stays wired: certify's
     diagnostics drive the exception, so the same diagnostics must be
     errors. *)
  let f = straightline () in
  let x, y = xy f in
  let p =
    Validate.certify ~mode:Validate.Witness ~pass:"gvn#1"
      ~witnesses:[ Validate.Witness.Replace { v = y; leader = x; cid = 0 } ]
      f f
  in
  let errors =
    List.filter Check.Diagnostic.is_error (Validate.Report.pass_diagnostics p)
  in
  Alcotest.(check bool) "certify surfaces the rejection as an error" true (errors <> [])

let suite =
  [
    Alcotest.test_case "oracle: congruence and x-x folding" `Quick test_oracle_congruence;
    Alcotest.test_case "oracle: constant branch reachability" `Quick test_oracle_reachability;
    Alcotest.test_case "oracle: optimistic cyclic congruence" `Quick test_oracle_cyclic;
    Alcotest.test_case "oracle: algebraic identities" `Quick test_oracle_identities;
    Alcotest.test_case "audit: corpus clean under all configs" `Quick test_audit_corpus_clean;
    Alcotest.test_case "audit: predicated wins are Info, not errors" `Quick
      test_audit_precision_win;
    Alcotest.test_case "mutant: wrong leader rejected" `Quick test_mutant_wrong_leader;
    Alcotest.test_case "mutant: out-of-scope leader rejected" `Quick
      test_mutant_leader_out_of_scope;
    Alcotest.test_case "mutant: wrong constant rejected" `Quick test_mutant_wrong_constant;
    Alcotest.test_case "mutant: dropped predicate rejected" `Quick test_mutant_dropped_predicate;
    Alcotest.test_case "mutant: live block dropped rejected" `Quick
      test_mutant_dropped_live_block;
    Alcotest.test_case "mutant: bogus phi collapse rejected" `Quick
      test_mutant_bogus_phi_collapse;
    Alcotest.test_case "engine 2: back-edge phi swap caught and attributed" `Quick
      test_equiv_phi_arg_swap;
    Alcotest.test_case "engine 2: identity is clean" `Quick test_equiv_clean_on_identity;
    Alcotest.test_case "pipeline: corpus certifies under all configs" `Slow
      test_pipeline_validates_corpus;
    Alcotest.test_case "pipeline: benchmark suite certifies under all presets" `Slow
      test_pipeline_validates_suite;
    Alcotest.test_case "pipeline: validation report shape" `Quick test_validation_report_shape;
    Alcotest.test_case "certify: rejection surfaces as error" `Quick
      test_pipeline_raises_on_refuted_pass;
  ]

(* The heavy differential battery: for randomized programs under every
   configuration, the full optimization (GVN rewrite + DCE + CFG cleanup)
   must preserve the interpreter's results, keep SSA valid, and the engine's
   facts must hold at run time. This is the suite's strongest oracle. *)

let optimize_pipeline config f =
  (* Every routine goes through the full structured checker before and
     after optimization: zero Error-severity diagnostics allowed. *)
  ignore (Check.check_exn f);
  let st = Pgvn.Driver.run config f in
  let g = Transform.Apply.rebuild st f in
  ignore (Check.check_exn g);
  let g = Transform.Simplify_cfg.fixpoint (Transform.Dce.run g) in
  ignore (Check.check_exn g);
  (st, g)

let profiles =
  [
    ("default", Workload.Generator.default_profile);
    ("acyclic", { Workload.Generator.default_profile with loop_weight = 0 });
    ( "switch-heavy",
      { Workload.Generator.default_profile with switch_weight = 6; if_weight = 2 } );
    ( "guard-dense",
      {
        Workload.Generator.default_profile with
        equality_guard_weight = 40;
        constant_guard_weight = 25;
      } );
    ("deep", { Workload.Generator.default_profile with max_depth = 6; stmt_budget = 60 });
  ]

let prop_for (pname, profile) =
  QCheck.Test.make
    ~name:(Printf.sprintf "every config preserves semantics (%s programs)" pname)
    ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let f = Workload.Generator.func ~profile ~seed ~name:"d" () in
      let rng = Util.Prng.create (seed + 1) in
      List.for_all
        (fun (_, config) ->
          let _, g = optimize_pipeline config f in
          let ok = ref true in
          for _ = 1 to 12 do
            let args = Array.init 8 (fun _ -> Util.Prng.range rng (-15) 15) in
            if
              not
                (Ir.Interp.equal_result
                   (Ir.Interp.run ~fuel:300_000 f args)
                   (Ir.Interp.run ~fuel:300_000 g args))
            then ok := false
          done;
          !ok)
        Helpers.all_configs)

let prop_optimized_not_weaker =
  (* Optimizing an already-optimized function must be a no-op or shrink it:
     a fixed-point sanity check. *)
  QCheck.Test.make ~name:"optimization reaches a fixed point" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"fp" () in
      let _, g = optimize_pipeline Pgvn.Config.full f in
      let _, h = optimize_pipeline Pgvn.Config.full g in
      Ir.Func.num_instrs h <= Ir.Func.num_instrs g)

let prop_extended_at_least_as_strong =
  (* On the corpus, the φ-distribution extension only adds constants. (Like
     value inference, it is not guaranteed monotone in general — it can
     trade a sum-shaped congruence for a φ-shaped one — so the general
     property is semantic soundness, covered above.) *)
  QCheck.Test.make ~name:"full_extended not weaker on the corpus" ~count:1 QCheck.unit
    (fun () ->
      List.for_all
        (fun (_, src) ->
          let f = Helpers.func_of_src src in
          let s0 = Pgvn.Driver.summarize (Pgvn.Driver.run Pgvn.Config.full f) in
          let s1 = Pgvn.Driver.summarize (Pgvn.Driver.run Pgvn.Config.full_extended f) in
          s1.Pgvn.Driver.constant_values >= s0.Pgvn.Driver.constant_values)
        Workload.Corpus.all_named)

let prop_corpus_all_configs =
  QCheck.Test.make ~name:"every config preserves semantics on the corpus" ~count:1
    QCheck.unit
    (fun () ->
      List.for_all
        (fun (_, src) ->
          let f = Helpers.func_of_src src in
          List.for_all
            (fun (_, config) ->
              let _, g = optimize_pipeline config f in
              Helpers.equivalent ~runs:40 ~seed:99 f g)
            Helpers.all_configs)
        Workload.Corpus.all_named)

let prop_sparse_consts_agreed_by_gvn =
  (* The abstract-interpretation side of the house against the engine: every
     constant the sparse constant domain proves must appear in the GVN run's
     final table — as that constant, or as unreachable (the engine's
     predication can prove strictly more blocks dead). *)
  QCheck.Test.make ~name:"every sparse-const proof is agreed to by the GVN table"
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"ka" () in
      let st = Pgvn.Driver.run Pgvn.Config.full f in
      let k = Absint.Consts.run ~refine:false f in
      let ok = ref true in
      Array.iteri
        (fun i d ->
          if Ir.Func.defines_value (Ir.Func.instr f i) then
            match d with
            | Absint.Konst.Cst c ->
                if
                  not
                    (Pgvn.Driver.value_unreachable st i
                    || Pgvn.Driver.value_constant st i = Some c)
                then ok := false
            | _ -> ())
        k.Absint.Consts.facts;
      !ok)

let suite =
  List.map prop_for profiles
  |> List.map QCheck_alcotest.to_alcotest
  |> fun l ->
  l
  @ [
      QCheck_alcotest.to_alcotest prop_sparse_consts_agreed_by_gvn;
      QCheck_alcotest.to_alcotest prop_optimized_not_weaker;
      QCheck_alcotest.to_alcotest prop_extended_at_least_as_strong;
      QCheck_alcotest.to_alcotest prop_corpus_all_configs;
    ]

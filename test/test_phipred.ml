(* φ-predication specifics (Figure 8): block predicates, canonical edge
   order, the abort conditions, and congruence across control structures. *)

let full = Pgvn.Config.full

let run src =
  let f = Helpers.func_of_src src in
  (f, Pgvn.Driver.run full f)

let test_block_predicate_computed () =
  (* A join that postdominates its idom gets an OR-of-paths predicate. *)
  let f, st = run "routine f(a) { x = 0; if (a > 0) x = 1; return x; }" in
  let join = ref (-1) in
  for b = 0 to Ir.Func.num_blocks f - 1 do
    if Array.length (Ir.Func.block f b).Ir.Func.preds >= 2 then join := b
  done;
  (match st.Pgvn.State.pred_block.(!join) with
  | Some p -> (
      match Pgvn.Hexpr.node p with
      | Pgvn.Hexpr.Por [ _; _ ] -> ()
      | _ -> Alcotest.failf "expected a 2-way OR, got %s" (Pgvn.Hexpr.to_string p))
  | None -> Alcotest.fail "join block has no predicate");
  (* CANONICAL lists exactly the reachable incoming edges. *)
  Alcotest.(check int) "canonical arity" 2 (Array.length st.Pgvn.State.canonical.(!join))

let test_canonical_order_flips_with_operator () =
  (* The edge whose predicate has operator =, < or <= comes first (§2.8),
     so `if (a < b) p = 7;` and `if (b >= a) { } else q = 7;` produce
     congruent φs even though the branch arms are mirrored. *)
  (* ¬(a < b) is (a >= b): the second diamond tests the negation and puts
     the assignment in the else arm, so the φs align only through the
     canonical ordering of outgoing edges. *)
  let src =
    "routine f(a, b) { p = 0; if (a < b) p = 7; q = 0; if (a >= b) { } else { q = 7; } \
     return p - q; }"
  in
  Helpers.check_const "mirrored diamonds congruent" (Some 0) (Helpers.run_and_return full src)

let test_loop_header_has_no_predicate () =
  (* A loop header's predicate computation aborts on the back edge. *)
  let f, st = run "routine f(n) { i = 0; while (i < n) { i = i + 1; } return i; }" in
  let header = ref (-1) in
  for b = 0 to Ir.Func.num_blocks f - 1 do
    if Pgvn.State.has_incoming_back_edge st b then header := b
  done;
  Alcotest.(check bool) "found the header" true (!header >= 0);
  Alcotest.(check bool) "no predicate for cyclic joins" true
    (st.Pgvn.State.pred_block.(!header) = None)

let test_nested_diamond_predicates () =
  (* The P/Q pattern of Figure 1: both accumulators merge over congruent
     nested structures. *)
  let src =
    "routine f(x) { p = 0; if (x >= 1) { if (x >= 9) p = 1; } \
     q = 0; if (x >= 1) { if (x >= 9) q = 1; } return p - q; }"
  in
  Helpers.check_const "nested congruent structures" (Some 0) (Helpers.run_and_return full src)

let test_different_predicates_stay_apart () =
  (* Diamonds over different conditions must NOT merge. *)
  let src =
    "routine f(a, b) { p = 0; if (a < b) p = 7; q = 0; if (a > b) q = 7; return p - q; }"
  in
  Helpers.check_const "different predicates: no merge" None (Helpers.run_and_return full src);
  (* and the result indeed differs at run time for a < b *)
  let f = Helpers.func_of_src src in
  match Ir.Interp.run f [| 1; 2 |] with
  | Ir.Interp.Ret 7 -> ()
  | r -> Alcotest.failf "expected 7, got %a" Ir.Interp.pp_result r

let test_dead_arm_changes_predicate () =
  (* When one diamond's arm is unreachable the φ collapses instead of
     being predicated. *)
  let src = "routine f(a) { p = 0; if (2 > 3) p = 7; q = 0; if (a > 0) q = 7; return p; }" in
  let f, st = run src in
  Helpers.check_const "collapsed phi is 0" (Some 0) (Helpers.return_constant st f)

(* A three-way join whose middle paths pass through a second conditional
   that targets the join directly (no intermediate reconvergence): the
   Figure 2 block-11 shape. Built by hand — the mini-C lowering always
   reconverges ifs at their own joins, which the Figure 8 diamond shortcut
   then correctly flattens. *)
let build_three_way ~c1 ~c2 ~c3 =
  let bld = Ir.Builder.create ~name:"three" ~nparams:2 in
  let b0 = Ir.Builder.add_block bld in
  let b1 = Ir.Builder.add_block bld in
  let b2 = Ir.Builder.add_block bld in
  let join = Ir.Builder.add_block bld in
  let x = Ir.Builder.param bld b0 0 in
  let y = Ir.Builder.param bld b0 1 in
  let zero = Ir.Builder.const bld b0 0 in
  let p = Ir.Builder.cmp bld b0 Ir.Types.Lt x y in
  let _, e_b0_b2 = Ir.Builder.branch bld b0 p ~ift:b1 ~iff:b2 in
  let q = Ir.Builder.cmp bld b1 Ir.Types.Lt x zero in
  let e_b1_t, e_b1_f = Ir.Builder.branch bld b1 q ~ift:join ~iff:join in
  ignore (c3 : int);
  let e_b2 = Ir.Builder.jump bld b2 ~dst:join in
  let phi = Ir.Builder.phi bld join in
  Ir.Builder.set_phi_arg bld ~phi ~edge:e_b1_t (Ir.Builder.const bld b1 c1);
  Ir.Builder.set_phi_arg bld ~phi ~edge:e_b1_f (Ir.Builder.const bld b1 c2);
  Ir.Builder.set_phi_arg bld ~phi ~edge:e_b2 (Ir.Builder.const bld b2 c3);
  ignore e_b0_b2;
  Ir.Builder.ret bld join phi;
  let f = Ir.Builder.finish bld in
  (Ssa.Verify.check f, Ir.Builder.final_value bld phi)

let test_partial_predicate_shapes () =
  let f, _phi = build_three_way ~c1:1 ~c2:2 ~c3:3 in
  let st = Pgvn.Driver.run full f in
  let rec has_and e =
    match Pgvn.Hexpr.node e with
    | Pgvn.Hexpr.Pand _ -> true
    | Pgvn.Hexpr.Por arms -> List.exists has_and arms
    | _ -> false
  in
  (* the join's predicate must be an OR with AND arms for the two paths
     through the inner conditional *)
  (match st.Pgvn.State.pred_block.(3) with
  | Some p -> (
      match Pgvn.Hexpr.node p with
      | Pgvn.Hexpr.Por arms ->
          Alcotest.(check bool) "AND arms present" true (List.exists has_and arms);
          Alcotest.(check int) "three arms" 3 (List.length arms)
      | _ -> Alcotest.failf "expected OR, got %s" (Pgvn.Hexpr.to_string p))
  | None -> Alcotest.fail "join has no predicate");
  (* plain nested ifs stay flat thanks to the dominator shortcut *)
  let _, st2 = run "routine f(x) { p = 0; if (x >= 1) { if (x >= 9) { p = 1; } } return p; }" in
  let flat = ref true in
  Array.iter
    (fun p -> match p with Some p when has_and p -> flat := false | _ -> ())
    st2.Pgvn.State.pred_block;
  Alcotest.(check bool) "shortcut keeps simple nests flat" true !flat

let prop_phipred_soundness =
  (* φ-predication must never merge values that differ at run time:
     rechecked by the acyclic runtime-congruence property, here with a
     diamond-heavy generator profile. *)
  QCheck.Test.make ~name:"phi-predication sound on diamond-heavy programs" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let profile =
        {
          Workload.Generator.default_profile with
          loop_weight = 0;
          if_weight = 10;
          equality_guard_weight = 10;
          constant_guard_weight = 10;
        }
      in
      let f = Workload.Generator.func ~profile ~seed ~name:"pp" () in
      let st = Pgvn.Driver.run full f in
      let rng = Util.Prng.create (seed + 7) in
      let ok = ref true in
      for _ = 1 to 10 do
        let args = Array.init 8 (fun _ -> Util.Prng.range rng (-9) 9) in
        let _, env = Ir.Interp.run_with_env f args in
        let repr = Hashtbl.create 32 in
        Array.iteri
          (fun v value ->
            match value with
            | Some rv when Ir.Func.defines_value (Ir.Func.instr f v) -> (
                let c = st.Pgvn.State.class_of.(v) in
                if c <> st.Pgvn.State.initial then
                  match Hashtbl.find_opt repr c with
                  | None -> Hashtbl.replace repr c rv
                  | Some rv' -> if rv <> rv' then ok := false)
            | _ -> ())
          env
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "join blocks get OR predicates" `Quick test_block_predicate_computed;
    Alcotest.test_case "canonical edge order normalizes operators" `Quick
      test_canonical_order_flips_with_operator;
    Alcotest.test_case "loop headers have no predicate" `Quick test_loop_header_has_no_predicate;
    Alcotest.test_case "nested congruent diamonds merge" `Quick test_nested_diamond_predicates;
    Alcotest.test_case "different predicates stay apart" `Quick
      test_different_predicates_stay_apart;
    Alcotest.test_case "dead arms collapse instead of predicate" `Quick
      test_dead_arm_changes_predicate;
    Alcotest.test_case "partial predicates form OR-of-ANDs" `Quick test_partial_predicate_shapes;
    QCheck_alcotest.to_alcotest prop_phipred_soundness;
  ]

(* The GCM transform pass: corpus-wide certified rebuilds that preserve
   observable behavior, the LICM shape it exists for, the pipeline pass-list
   integration, and the seeded illegal-plan mutants — a corrupted plan must
   be refuted by [Gcm.certify] with its exact pinned [sched-*] id, never
   silently rebuilt. test_schedule.ml pins the checker against raw placement
   vectors; this suite pins the transform's use of it. *)

module Gcm = Transform.Gcm

let func_of_src = Workload.Corpus.func_of_src

let find_instr f p =
  let found = ref (-1) in
  for i = 0 to Ir.Func.num_instrs f - 1 do
    if !found < 0 && p (Ir.Func.instr f i) then found := i
  done;
  if !found < 0 then Alcotest.fail "expected instruction not found";
  !found

let checks errs = List.sort_uniq compare (List.map (fun d -> d.Check.Diagnostic.check) errs)

(* A corrupted plan must be refuted with exactly [expected], all Errors. *)
let expect_refused msg (p : Gcm.plan) expected =
  let errs = Check.errors (Gcm.certify p) in
  if errs = [] then Alcotest.failf "%s: corrupted plan certified" msg;
  Alcotest.(check (list string)) msg expected (checks errs)

(* ------------------------------------------------------------------ *)
(* Certified rebuilds over the corpus                                  *)

(* Every hand-written corpus routine and a spread of generated programs:
   the plan certifies, the rebuild verifies as SSA, the CFG shape is
   preserved, and behavior is unchanged on random inputs. *)
let test_corpus_certified () =
  let try_func name f =
    match Gcm.run f with
    | exception Gcm.Rejected { diagnostics } ->
        Alcotest.failf "%s: plan rejected: %s" name
          (Check.Diagnostic.to_string (List.hd diagnostics))
    | g, (s : Gcm.stats) ->
        ignore (Ssa.Verify.check g);
        Alcotest.(check int)
          (name ^ ": same block count") (Ir.Func.num_blocks f) (Ir.Func.num_blocks g);
        Alcotest.(check int)
          (name ^ ": same edge count") (Ir.Func.num_edges f) (Ir.Func.num_edges g);
        if s.Gcm.moved < s.Gcm.hoisted + s.Gcm.sunk then
          Alcotest.failf "%s: moved %d < hoisted %d + sunk %d" name s.Gcm.moved s.Gcm.hoisted
            s.Gcm.sunk;
        if not (Helpers.equivalent ~seed:41 f g) then
          Alcotest.failf "%s: behavior changed under GCM" name
  in
  List.iter (fun (name, src) -> try_func name (func_of_src src)) Workload.Corpus.all_named;
  for seed = 1 to 25 do
    try_func
      (Printf.sprintf "gen%d" seed)
      (Workload.Generator.func ~seed ~name:"gcm" ())
  done

(* The rebuild after a no-motion plan is the input itself (byte-stable
   no-op), not a structurally equal copy. *)
let test_noop_is_physical_identity () =
  let f = func_of_src "routine f(a) { return a + 1; }" in
  let g, s = Gcm.run f in
  Alcotest.(check int) "nothing to move" 0 s.Gcm.moved;
  Alcotest.(check bool) "no-op returns the input" true (f == g)

(* ------------------------------------------------------------------ *)
(* The LICM shape                                                      *)

(* The invariant multiply inside the loop is hoisted out of it — the
   canonical Click '95 win this pass exists for. *)
let test_licm_hoist () =
  let f =
    func_of_src
      "routine f(a, n) { i = 0; s = 0; while (i < n) { s = s + a * 3; i = i + 1; } return s; \
       }"
  in
  let p = Gcm.plan f in
  let s = Gcm.stats p in
  Alcotest.(check bool) "something hoisted" true (s.Gcm.hoisted >= 1);
  let x = find_instr f (function Ir.Func.Binop (Ir.Types.Mul, _, _) -> true | _ -> false) in
  let fr = p.Gcm.placement.Schedule.Placement.forest in
  let from_depth = Analysis.Loops.depth_at fr (Ir.Func.block_of_instr f x) in
  let to_depth = Analysis.Loops.depth_at fr p.Gcm.target.(x) in
  Alcotest.(check int) "multiply starts in the loop" 1 from_depth;
  Alcotest.(check int) "multiply lands outside it" 0 to_depth;
  let g, rs = Gcm.run f in
  Alcotest.(check bool) "run moves it" true (rs.Gcm.moved >= 1);
  if not (Helpers.equivalent ~seed:43 f g) then Alcotest.fail "LICM rebuild changed behavior";
  (* In the rebuilt function the multiply really sits at loop depth 0. *)
  let gx = find_instr g (function Ir.Func.Binop (Ir.Types.Mul, _, _) -> true | _ -> false) in
  let gfr = Analysis.Loops.forest (Analysis.Graph.of_func g) in
  Alcotest.(check int) "rebuilt multiply is outside the loop" 0
    (Analysis.Loops.depth_at gfr (Ir.Func.block_of_instr g gx))

(* A guarded division stays under its guard: the facts that clear it do
   not hold above, so the plan pins it and counts the block. *)
let test_guarded_div_pinned () =
  let f = func_of_src "routine f(a, b) { if (b != 0) { return a / b; } return 0; }" in
  let p = Gcm.plan f in
  let d = find_instr f (function Ir.Func.Binop (Ir.Types.Div, _, _) -> true | _ -> false) in
  Alcotest.(check int) "division not moved" (Ir.Func.block_of_instr f d) p.Gcm.target.(d);
  let s = Gcm.stats p in
  Alcotest.(check bool) "speculation block counted" true (s.Gcm.speculation_blocked >= 1)

(* ------------------------------------------------------------------ *)
(* Pipeline integration                                                *)

let test_pipeline_with_gcm () =
  let f =
    func_of_src
      "routine f(a, n) { i = 0; s = 0; while (i < n) { s = s + a * 3; i = i + 1; } return s; \
       }"
  in
  let opts = Transform.Pipeline.Options.(default |> with_gcm true) in
  let r = Transform.Pipeline.run_list opts (Transform.Pipeline.standard_passes opts) f in
  (match r.Transform.Pipeline.gcm_stats with
  | None -> Alcotest.fail "gcm_stats missing under with_gcm"
  | Some s -> Alcotest.(check bool) "pipeline GCM moved the invariant" true (s.Gcm.moved >= 1));
  let has_gcm_timing =
    List.exists
      (fun t -> t.Transform.Pipeline.kind = Transform.Pipeline.Gcm)
      r.Transform.Pipeline.timings
  in
  Alcotest.(check bool) "gcm pass timed" true has_gcm_timing;
  if not (Helpers.equivalent ~seed:47 f r.Transform.Pipeline.func) then
    Alcotest.fail "pipeline with GCM changed behavior";
  (* Off by default: no stats, no pass. *)
  let r0 =
    Transform.Pipeline.run_list Transform.Pipeline.Options.default
      (Transform.Pipeline.standard_passes Transform.Pipeline.Options.default)
      f
  in
  Alcotest.(check bool) "no gcm_stats by default" true
    (r0.Transform.Pipeline.gcm_stats = None)

(* ------------------------------------------------------------------ *)
(* Seeded illegal-plan mutants                                         *)

(* Each mutant corrupts the plan's target vector the way a buggy planner
   would, and must be refused by [certify] with the exact pinned id. *)

let test_mutant_phi_moved () =
  let f = func_of_src "routine f(n) { i = 0; while (i < n) { i = i + 1; } return i; }" in
  let p = Gcm.plan f in
  let phi = find_instr f (function Ir.Func.Phi _ -> true | _ -> false) in
  p.Gcm.target.(phi) <- Ir.Func.entry;
  expect_refused "phi moved off its join" p [ "sched-phi" ]

let test_mutant_div_hoisted () =
  (* [a] is used on both arms so the plan keeps both operands at entry and
     the corrupted hoist trips speculation alone. *)
  let f = func_of_src "routine f(a, b) { if (b != 0) { return a / b; } return a; }" in
  let p = Gcm.plan f in
  let d = find_instr f (function Ir.Func.Binop (Ir.Types.Div, _, _) -> true | _ -> false) in
  p.Gcm.target.(d) <- Ir.Func.entry;
  expect_refused "faulting div hoisted past its guard" p [ "sched-speculation" ]

let test_mutant_into_loop () =
  let f =
    func_of_src
      "routine f(a, n) { x = a * 3; i = 0; s = 0; while (i < n) { s = s + x; i = i + 1; } \
       return s; }"
  in
  let p = Gcm.plan f in
  let x = find_instr f (function Ir.Func.Binop (Ir.Types.Mul, _, _) -> true | _ -> false) in
  let fr = Analysis.Loops.forest (Analysis.Graph.of_func f) in
  Alcotest.(check int) "one loop" 1 (Array.length fr.Analysis.Loops.loops);
  p.Gcm.target.(x) <- fr.Analysis.Loops.loops.(0).Analysis.Loops.header;
  expect_refused "invariant pushed into the loop" p [ "sched-loop-depth" ]

let test_mutant_def_below_use () =
  let f = func_of_src "routine f(a) { x = a + 1; if (a > 0) { return x; } return 0; }" in
  let p = Gcm.plan f in
  let x = find_instr f (function Ir.Func.Binop (Ir.Types.Add, _, _) -> true | _ -> false) in
  let other_arm =
    Ir.Func.block_of_instr f
      (find_instr f (function
        | Ir.Func.Return v -> (
            match Ir.Func.instr f v with Ir.Func.Const 0 -> true | _ -> false)
        | _ -> false))
  in
  p.Gcm.target.(x) <- other_arm;
  expect_refused "def moved below a use" p [ "sched-dominance" ]

let suite =
  [
    Alcotest.test_case "corpus rebuilds certify and preserve behavior" `Quick
      test_corpus_certified;
    Alcotest.test_case "no-motion run is a physical no-op" `Quick test_noop_is_physical_identity;
    Alcotest.test_case "LICM shape hoists the invariant multiply" `Quick test_licm_hoist;
    Alcotest.test_case "guarded division stays pinned" `Quick test_guarded_div_pinned;
    Alcotest.test_case "pipeline pass-list integration" `Quick test_pipeline_with_gcm;
    Alcotest.test_case "mutant: phi moved" `Quick test_mutant_phi_moved;
    Alcotest.test_case "mutant: div hoisted past guard" `Quick test_mutant_div_hoisted;
    Alcotest.test_case "mutant: move into deeper loop" `Quick test_mutant_into_loop;
    Alcotest.test_case "mutant: def below use" `Quick test_mutant_def_below_use;
  ]

(* The symbolic expression algebra: the canonical sum-of-products form is
   property-tested against direct numeric evaluation, and the hash/equality
   pair against each other. *)

module E = Pgvn.Expr

(* Value ids 0..9 with ranks = id + 1 and a numeric environment. *)
let rank v = v + 1

let eval_terms env ts =
  List.fold_left
    (fun acc t ->
      acc + (t.E.coeff * List.fold_left (fun p v -> p * env.(v)) 1 t.E.factors))
    0 ts

(* Random canonical term lists, built through the algebra itself. *)
let gen_atom =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> E.Const n) (int_range (-5) 5);
        map (fun v -> E.Value v) (int_range 0 9);
      ])

let rec gen_terms size =
  QCheck.Gen.(
    if size = 0 then map E.terms_of_atom gen_atom
    else
      oneof
        [
          map E.terms_of_atom gen_atom;
          map2 (E.merge_terms rank) (gen_terms (size - 1)) (gen_terms (size - 1));
          map (fun t -> E.negate_terms t) (gen_terms (size - 1));
          map2 (E.mul_terms rank) (gen_terms (size - 1)) (gen_terms (size - 1));
        ])

let arb_terms = QCheck.make (gen_terms 3) ~print:(fun ts -> E.to_string (E.Sum ts))
let arb_env = QCheck.(array_of_size (QCheck.Gen.return 10) (int_range (-4) 4))

let prop_merge_is_addition =
  QCheck.Test.make ~name:"merge_terms computes addition" ~count:300
    QCheck.(triple arb_terms arb_terms arb_env)
    (fun (a, b, env) ->
      eval_terms env (E.merge_terms rank a b) = eval_terms env a + eval_terms env b)

let prop_mul_is_multiplication =
  QCheck.Test.make ~name:"mul_terms computes multiplication" ~count:300
    QCheck.(triple arb_terms arb_terms arb_env)
    (fun (a, b, env) ->
      eval_terms env (E.mul_terms rank a b) = eval_terms env a * eval_terms env b)

let prop_negate =
  QCheck.Test.make ~name:"negate_terms negates" ~count:200
    QCheck.(pair arb_terms arb_env)
    (fun (a, env) -> eval_terms env (E.negate_terms a) = -eval_terms env a)

(* Canonical-form invariants: sorted factor lists, nonzero coefficients,
   no duplicate products. *)
let prop_canonical_invariants =
  QCheck.Test.make ~name:"term lists stay canonical" ~count:300 arb_terms (fun ts ->
      let sorted_factors t =
        let rec go = function
          | a :: (b :: _ as rest) -> (rank a, a) <= (rank b, b) && go rest
          | _ -> true
        in
        go t.E.factors
      in
      let rec strictly_increasing = function
        | a :: (b :: _ as rest) ->
            E.compare_factors rank a.E.factors b.E.factors < 0 && strictly_increasing rest
        | _ -> true
      in
      List.for_all (fun t -> t.E.coeff <> 0 && sorted_factors t) ts && strictly_increasing ts)

(* Commutativity and associativity come for free from canonicalization:
   syntactically equal results. *)
let prop_commutative =
  QCheck.Test.make ~name:"a+b and b+a canonicalize identically" ~count:200
    QCheck.(pair arb_terms arb_terms)
    (fun (a, b) -> E.equal_terms (E.merge_terms rank a b) (E.merge_terms rank b a))

let prop_associative =
  QCheck.Test.make ~name:"(a+b)+c and a+(b+c) canonicalize identically" ~count:200
    QCheck.(triple arb_terms arb_terms arb_terms)
    (fun (a, b, c) ->
      E.equal_terms
        (E.merge_terms rank (E.merge_terms rank a b) c)
        (E.merge_terms rank a (E.merge_terms rank b c)))

let prop_distributive =
  QCheck.Test.make ~name:"a*(b+c) and a*b + a*c canonicalize identically" ~count:200
    QCheck.(triple arb_terms arb_terms arb_terms)
    (fun (a, b, c) ->
      E.equal_terms
        (E.mul_terms rank a (E.merge_terms rank b c))
        (E.merge_terms rank (E.mul_terms rank a b) (E.mul_terms rank a c)))

let prop_equal_hash =
  QCheck.Test.make ~name:"equal expressions hash equally" ~count:300
    QCheck.(pair arb_terms arb_terms)
    (fun (a, b) ->
      let ea = E.of_terms a and eb = E.of_terms b in
      (not (E.equal ea eb)) || E.hash ea = E.hash eb)

let test_of_terms_reduction () =
  Alcotest.(check bool) "empty = 0" true (E.equal (E.of_terms []) (E.Const 0));
  Alcotest.(check bool) "const term" true
    (E.equal (E.of_terms [ { E.coeff = 7; factors = [] } ]) (E.Const 7));
  Alcotest.(check bool) "unit value" true
    (E.equal (E.of_terms [ { E.coeff = 1; factors = [ 3 ] } ]) (E.Value 3));
  match E.of_terms [ { E.coeff = 2; factors = [ 3 ] } ] with
  | E.Sum _ -> ()
  | _ -> Alcotest.fail "2*v3 must stay a sum"

let test_cmp_canonicalization () =
  (* Constants order before values; swapping flips the operator. *)
  (match E.cmp_atoms rank Ir.Types.Gt (E.Value 4) (E.Const 1) with
  | E.Cmp (Ir.Types.Lt, E.Const 1, E.Value 4) -> ()
  | e -> Alcotest.failf "bad canonicalization: %s" (E.to_string e));
  (* Higher-ranked value second. *)
  (match E.cmp_atoms rank Ir.Types.Le (E.Value 7) (E.Value 2) with
  | E.Cmp (Ir.Types.Ge, E.Value 2, E.Value 7) -> ()
  | e -> Alcotest.failf "bad value ordering: %s" (E.to_string e));
  (* Identical operands fold. *)
  (match E.cmp_atoms rank Ir.Types.Le (E.Value 5) (E.Value 5) with
  | E.Const 1 -> ()
  | e -> Alcotest.failf "x<=x should fold to 1: %s" (E.to_string e));
  match E.cmp_atoms rank Ir.Types.Lt (E.Const 3) (E.Const 4) with
  | E.Const 1 -> ()
  | e -> Alcotest.failf "3<4 should fold: %s" (E.to_string e)

let gen_atom_arb = QCheck.make gen_atom

let prop_cmp_semantics =
  QCheck.Test.make ~name:"cmp_atoms preserves comparison semantics" ~count:400
    QCheck.(triple (pair gen_atom_arb gen_atom_arb) (int_range 0 5) arb_env)
    (fun ((x, y), opi, env) ->
      let op = List.nth [ Ir.Types.Eq; Ne; Lt; Le; Gt; Ge ] opi in
      let eval_atom = function E.Const n -> n | E.Value v -> env.(v) | _ -> assert false in
      let expected = Ir.Types.eval_cmp op (eval_atom x) (eval_atom y) in
      match E.cmp_atoms rank op x y with
      | E.Const c ->
          (* Folding is only valid when forced: equal atoms or two consts. *)
          c = expected
      | E.Cmp (op', a, b) -> Ir.Types.eval_cmp op' (eval_atom a) (eval_atom b) = expected
      | _ -> false)

let prop_negate_pred =
  QCheck.Test.make ~name:"negate_pred inverts comparison truth" ~count:300
    QCheck.(triple (pair gen_atom_arb gen_atom_arb) (int_range 0 5) arb_env)
    (fun ((x, y), opi, env) ->
      let op = List.nth [ Ir.Types.Eq; Ne; Lt; Le; Gt; Ge ] opi in
      let eval_atom = function E.Const n -> n | E.Value v -> env.(v) | _ -> assert false in
      let rec eval_pred = function
        | E.Const n -> n <> 0
        | E.Cmp (op, a, b) -> Ir.Types.eval_cmp op (eval_atom a) (eval_atom b) = 1
        | E.Op (E.Uuop Ir.Types.Lnot, [ p ]) -> not (eval_pred p)
        | _ -> assert false
      in
      let p = E.cmp_atoms rank op x y in
      eval_pred (E.negate_pred p) = not (eval_pred p))

let test_binop_simplifications () =
  let check msg expected got =
    Alcotest.(check bool) msg true (E.equal expected got)
  in
  check "x & x = x" (E.Value 2) (E.binop_atoms rank Ir.Types.And (E.Value 2) (E.Value 2));
  check "x ^ x = 0" (E.Const 0) (E.binop_atoms rank Ir.Types.Xor (E.Value 2) (E.Value 2));
  check "x | 0 = x" (E.Value 2) (E.binop_atoms rank Ir.Types.Or (E.Value 2) (E.Const 0));
  check "x / 1 = x" (E.Value 2) (E.binop_atoms rank Ir.Types.Div (E.Value 2) (E.Const 1));
  check "x % 1 = 0" (E.Const 0) (E.binop_atoms rank Ir.Types.Rem (E.Value 2) (E.Const 1));
  check "x << 0 = x" (E.Value 2) (E.binop_atoms rank Ir.Types.Shl (E.Value 2) (E.Const 0));
  (* Division by zero must never fold: it traps at run time. *)
  match E.binop_atoms rank Ir.Types.Div (E.Const 6) (E.Const 0) with
  | E.Op (E.Ubop Ir.Types.Div, _) -> ()
  | e -> Alcotest.failf "6/0 must stay symbolic: %s" (E.to_string e)

(* ------------------------------------------------------------------ *)
(* The hash-consed arena (Hexpr): interning must agree with structural
   equality, and the canonical predicate connectives must be insensitive
   to operand order, association and duplication. *)

module H = Pgvn.Hexpr

(* Pand/Por-free expressions over a small alphabet, so random pairs collide
   often enough to exercise the "equal => same cell" direction. (Pand/Por
   are excluded because the arena canonicalizes them beyond Expr.equal;
   they get their own property below.) *)
let gen_sexpr =
  QCheck.Gen.(
    sized_size (int_bound 3)
    @@ fix (fun self n ->
           let atom =
             oneof
               [
                 map (fun c -> E.Const c) (int_range (-2) 2);
                 map (fun v -> E.Value v) (int_range 0 3);
               ]
           in
           if n = 0 then atom
           else
             frequency
               [
                 (2, atom);
                 ( 2,
                   map2
                     (fun op (x, y) -> E.Cmp (op, x, y))
                     (oneofl [ Ir.Types.Eq; Ne; Lt; Le; Gt; Ge ])
                     (pair (self (n - 1)) (self (n - 1))) );
                 ( 2,
                   map2
                     (fun sym xs -> E.Op (sym, xs))
                     (oneofl
                        [ E.Ubop Ir.Types.And; E.Ubop Ir.Types.Xor; E.Uuop Ir.Types.Lnot ])
                     (list_size (int_range 1 2) (self (n - 1))) );
                 (1, map (fun ts -> E.Sum ts) (gen_terms 2));
               ]))

let arb_sexpr = QCheck.make gen_sexpr ~print:E.to_string

let prop_cons_iff_equal =
  QCheck.Test.make ~name:"consed cells identical iff Expr.equal" ~count:500
    QCheck.(pair arb_sexpr arb_sexpr)
    (fun (x, y) ->
      let a = H.create () in
      let cx = H.of_expr a x and cy = H.of_expr a y in
      H.equal cx cy = E.equal x y)

let prop_cons_hash_agrees =
  QCheck.Test.make ~name:"consed hash agrees with structural bucketing" ~count:500
    QCheck.(pair arb_sexpr arb_sexpr)
    (fun (x, y) ->
      let a = H.create () in
      let cx = H.of_expr a x and cy = H.of_expr a y in
      (* Equal expressions land in one cell: same tag, same precomputed
         hash — and the structural hash agrees that they bucket together. *)
      (not (E.equal x y))
      || (H.hash cx = H.hash cy && H.tag cx = H.tag cy && E.hash x = E.hash y))

let prop_cons_roundtrip =
  QCheck.Test.make ~name:"to_expr inverts of_expr" ~count:300 arb_sexpr (fun x ->
      let a = H.create () in
      E.equal (H.to_expr (H.of_expr a x)) x)

let gen_pred =
  QCheck.Gen.(
    map3
      (fun op x y -> E.Cmp (op, E.Value x, E.Value y))
      (oneofl [ Ir.Types.Eq; Ne; Lt; Le; Gt; Ge ])
      (int_range 0 3) (int_range 0 3))

let prop_pand_por_canonical =
  QCheck.Test.make ~name:"pand/por insensitive to order, nesting, duplicates" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 4) gen_pred))
    (fun ps ->
      let a = H.create () in
      let cs = List.map (H.of_expr a) ps in
      let check conn =
        let flat = conn a cs in
        let rev = conn a (List.rev cs) in
        let dup = conn a (cs @ cs) in
        let nest_r =
          match cs with p :: rest when rest <> [] -> conn a [ p; conn a rest ] | _ -> flat
        in
        let nest_l =
          match List.rev cs with
          | p :: rest when rest <> [] -> conn a [ conn a (List.rev rest); p ]
          | _ -> flat
        in
        H.equal flat rev && H.equal flat dup && H.equal flat nest_r && H.equal flat nest_l
      in
      check H.pand && check H.por)

let test_pand_por_units () =
  let a = H.create () in
  Alcotest.(check bool) "pand [] = 1" true (H.equal (H.pand a []) (H.const a 1));
  Alcotest.(check bool) "por [] = 0" true (H.equal (H.por a []) (H.const a 0));
  let p = H.cmp_ a Ir.Types.Lt (H.value a 0) (H.value a 1) in
  Alcotest.(check bool) "pand [p] = p" true (H.equal (H.pand a [ p ]) p);
  Alcotest.(check bool) "por [p] = p" true (H.equal (H.por a [ p ]) p)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_merge_is_addition;
    QCheck_alcotest.to_alcotest prop_mul_is_multiplication;
    QCheck_alcotest.to_alcotest prop_negate;
    QCheck_alcotest.to_alcotest prop_canonical_invariants;
    QCheck_alcotest.to_alcotest prop_commutative;
    QCheck_alcotest.to_alcotest prop_associative;
    QCheck_alcotest.to_alcotest prop_distributive;
    QCheck_alcotest.to_alcotest prop_equal_hash;
    Alcotest.test_case "of_terms reductions" `Quick test_of_terms_reduction;
    Alcotest.test_case "comparison canonicalization" `Quick test_cmp_canonicalization;
    QCheck_alcotest.to_alcotest prop_cmp_semantics;
    QCheck_alcotest.to_alcotest prop_negate_pred;
    Alcotest.test_case "algebraic binop simplifications" `Quick test_binop_simplifications;
    QCheck_alcotest.to_alcotest prop_cons_iff_equal;
    QCheck_alcotest.to_alcotest prop_cons_hash_agrees;
    QCheck_alcotest.to_alcotest prop_cons_roundtrip;
    QCheck_alcotest.to_alcotest prop_pand_por_canonical;
    Alcotest.test_case "pand/por unit and singleton collapse" `Quick test_pand_por_units;
  ]

(* The transformation passes: each preserves semantics on generated
   programs, and each does its specific job on hand-written cases. *)

let gen_func seed = Workload.Generator.func ~seed ~name:"t" ()

let preserves name pass =
  QCheck.Test.make ~name ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      let g = pass f in
      ignore (Ssa.Verify.check g);
      Helpers.equivalent ~seed:(seed + 2) f g)

let prop_dce = preserves "DCE preserves semantics" Transform.Dce.run
let prop_lvn = preserves "LVN preserves semantics" Transform.Lvn.run
let prop_simplify = preserves "CFG simplification preserves semantics" Transform.Simplify_cfg.fixpoint

let prop_apply_all_configs =
  QCheck.Test.make ~name:"GVN rewrite preserves semantics (all configs)" ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      List.for_all
        (fun (_, config) ->
          let g = Transform.Apply.optimize ~config f in
          ignore (Ssa.Verify.check g);
          Helpers.equivalent ~seed:(seed + 3) f g)
        Helpers.all_configs)

(* Engine-2 properties: the validator's behavioral engine as a harness for
   the cleanup passes, at volume. *)

let prop_dce_keeps_live_opaques =
  QCheck.Test.make ~name:"DCE keeps live opaque calls (Engine 2)" ~count:100
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      let g = Transform.Dce.run f in
      (* Every opaque call feeding a terminator transitively — the IR's
         stand-in for observable side-effecting work — must survive. *)
      let live = Array.make (Ir.Func.num_instrs f) false in
      let rec mark v =
        if not live.(v) then begin
          live.(v) <- true;
          Ir.Func.iter_operands mark (Ir.Func.instr f v)
        end
      in
      Array.iter
        (fun ins -> if Ir.Func.is_terminator ins then Ir.Func.iter_operands mark ins)
        f.Ir.Func.instrs;
      let tags keep h =
        Array.to_list
          (Array.mapi
             (fun i ins ->
               match ins with Ir.Func.Opaque (t, _) when keep i -> Some t | _ -> None)
             h.Ir.Func.instrs)
        |> List.filter_map Fun.id |> List.sort compare
      in
      let rec subset xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xs', y :: ys' ->
            if x = y then subset xs' ys' else if y < x then subset xs ys' else false
      in
      subset (tags (fun i -> live.(i)) f) (tags (fun _ -> true) g)
      && Validate.Equiv.ok (Validate.Equiv.check ~runs:4 ~pass:"dce" f g))

let prop_simplify_equiv =
  QCheck.Test.make ~name:"simplify-cfg preserves edge-associated phi args (Engine 2)"
    ~count:100
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      let g = Transform.Simplify_cfg.fixpoint f in
      ignore (Ssa.Verify.check g);
      (* Block merging and edge folding re-home φ arguments; any slip shows
         up as a behavioral divergence on the battery. *)
      Validate.Equiv.ok (Validate.Equiv.check ~runs:4 ~pass:"simplify_cfg" f g))

let run_std opts f =
  Transform.Pipeline.run_list opts (Transform.Pipeline.standard_passes opts) f

let prop_pipeline =
  QCheck.Test.make ~name:"full pipeline preserves semantics" ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      let r = run_std Transform.Pipeline.Options.default f in
      ignore (Ssa.Verify.check r.Transform.Pipeline.func);
      Helpers.equivalent ~seed:(seed + 4) f r.Transform.Pipeline.func)

let prop_pipeline_monotone_size =
  QCheck.Test.make ~name:"pipeline does not grow programs" ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      let r = run_std Transform.Pipeline.Options.default f in
      Ir.Func.num_instrs r.Transform.Pipeline.func <= Ir.Func.num_instrs f)

(* The deprecated wrapper's pin: [run_with opts] must behave exactly like
   [run_list opts (standard_passes opts)] — same output function, same
   pass lineup (names and kinds, in order), same accounting shape. *)
let prop_run_with_equals_run_list =
  QCheck.Test.make ~name:"run_with ≡ run_list (standard_passes)" ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      let opts = Transform.Pipeline.Options.default in
      let a = Transform.Pipeline.run_with opts f in
      let b = run_std opts f in
      a.Transform.Pipeline.func = b.Transform.Pipeline.func
      && List.map
           (fun t -> (t.Transform.Pipeline.pass, t.Transform.Pipeline.kind))
           a.Transform.Pipeline.timings
         = List.map
             (fun t -> (t.Transform.Pipeline.pass, t.Transform.Pipeline.kind))
             b.Transform.Pipeline.timings)

let test_dce_removes_dead () =
  let f =
    Helpers.func_of_src
      "routine f(a) { dead1 = a * 37; dead2 = dead1 + 4; return a; }"
  in
  let g = Transform.Dce.run f in
  Alcotest.(check bool) "dead chain removed" true
    (Ir.Func.num_instrs g < Ir.Func.num_instrs f);
  (* Only param instructions and the return remain (plus entry constants). *)
  Array.iter
    (function
      | Ir.Func.Binop _ -> Alcotest.fail "dead binop survived"
      | _ -> ())
    g.Ir.Func.instrs

let test_lvn_removes_block_redundancy () =
  let f =
    Helpers.func_of_src
      "routine f(a, b) { x = a + b; y = a + b; z = b + a; return x + y + z; }"
  in
  let g = Transform.Lvn.run (Transform.Dce.run f) in
  (* a+b computed once: commutative operands are normalized. *)
  let adds =
    Array.to_list g.Ir.Func.instrs
    |> List.filter (function Ir.Func.Binop (Ir.Types.Add, _, _) -> true | _ -> false)
  in
  (* one for a+b, two for the reductions x+y and (x+y)+z *)
  Alcotest.(check int) "a+b computed once" 3 (List.length adds)

let test_lvn_folds_constants () =
  let f = Helpers.func_of_src "routine f() { return 6 * 7; }" in
  let g = Transform.Lvn.run f in
  let has_const42 =
    Array.exists (function Ir.Func.Const 42 -> true | _ -> false) g.Ir.Func.instrs
  in
  Alcotest.(check bool) "6*7 folded locally" true has_const42

let test_simplify_merges_chain () =
  (* A diamond with constant condition leaves a straight chain after GVN;
     simplify-cfg must merge it down to one block. *)
  let f = Helpers.func_of_src "routine f(a) { x = a + 1; if (1 < 2) x = x + 1; return x; }" in
  let g = Helpers.optimize Pgvn.Config.full f in
  Alcotest.(check int) "single block remains" 1 (Ir.Func.num_blocks g)

let test_apply_drops_unreachable () =
  let f = Helpers.func_of_src "routine f(a) { r = 1; if (2 == 3) { r = f0(a); } return r; }" in
  let g = Helpers.optimize Pgvn.Config.full f in
  Alcotest.(check int) "collapses entirely" 1 (Ir.Func.num_blocks g);
  Alcotest.(check bool) "opaque call gone" true
    (Array.for_all (function Ir.Func.Opaque _ -> false | _ -> true) g.Ir.Func.instrs)

let test_apply_redundancy_elimination () =
  (* The second a+b is replaced by the first (its leader dominates it). *)
  let f =
    Helpers.func_of_src
      "routine f(a, b) { x = a + b; if (a > 0) { y = a + b; return y; } return x; }"
  in
  let g = Helpers.optimize Pgvn.Config.full f in
  let adds =
    Array.to_list g.Ir.Func.instrs
    |> List.filter (function Ir.Func.Binop (Ir.Types.Add, _, _) -> true | _ -> false)
  in
  Alcotest.(check int) "a+b computed once across blocks" 1 (List.length adds)

let test_pipeline_timings_present () =
  let f = gen_func 123 in
  let r = run_std Transform.Pipeline.Options.default f in
  Alcotest.(check bool) "gvn timing recorded" true (r.Transform.Pipeline.gvn_seconds > 0.0);
  Alcotest.(check bool) "gvn < total" true
    (r.Transform.Pipeline.gvn_seconds <= r.Transform.Pipeline.total_seconds);
  Alcotest.(check bool) "several passes timed" true
    (List.length r.Transform.Pipeline.timings > 10)

(* Time accounting must match on the structural [kind] only: a timing
   whose display name merely *starts with* "gvn" (a hypothetical
   "gvn-lite#1" pass) must not be charged to GVN, and a GVN instance under
   any display name must be. *)
let test_kind_seconds_ignores_display_names () =
  let open Transform.Pipeline in
  let timings =
    [
      { pass = "gvn-lite#1"; kind = Dce; seconds = 100.0 };
      { pass = "gvn#1"; kind = Gvn; seconds = 1.0 };
      { pass = "renamed-engine#2"; kind = Gvn; seconds = 2.0 };
      { pass = "dce#1"; kind = Dce; seconds = 40.0 };
    ]
  in
  Alcotest.(check (float 1e-9)) "only kind=Gvn counts" 3.0 (kind_seconds Gvn timings);
  Alcotest.(check (float 1e-9))
    "the '#'-prefix collision lands on its true kind" 140.0 (kind_seconds Dce timings);
  Alcotest.(check (float 1e-9)) "total sums everything" 143.0 (total_seconds_of timings)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_dce;
    QCheck_alcotest.to_alcotest prop_lvn;
    QCheck_alcotest.to_alcotest prop_simplify;
    QCheck_alcotest.to_alcotest prop_dce_keeps_live_opaques;
    QCheck_alcotest.to_alcotest prop_simplify_equiv;
    QCheck_alcotest.to_alcotest prop_apply_all_configs;
    QCheck_alcotest.to_alcotest prop_pipeline;
    QCheck_alcotest.to_alcotest prop_pipeline_monotone_size;
    QCheck_alcotest.to_alcotest prop_run_with_equals_run_list;
    Alcotest.test_case "DCE removes dead code" `Quick test_dce_removes_dead;
    Alcotest.test_case "LVN removes local redundancy" `Quick test_lvn_removes_block_redundancy;
    Alcotest.test_case "LVN folds constants" `Quick test_lvn_folds_constants;
    Alcotest.test_case "simplify-cfg merges chains" `Quick test_simplify_merges_chain;
    Alcotest.test_case "rewrite drops unreachable code" `Quick test_apply_drops_unreachable;
    Alcotest.test_case "dominance-based redundancy elimination" `Quick
      test_apply_redundancy_elimination;
    Alcotest.test_case "pipeline reports timings" `Quick test_pipeline_timings_present;
    Alcotest.test_case "kind_seconds matches on kind, not display name" `Quick
      test_kind_seconds_ignores_display_names;
  ]

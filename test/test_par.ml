(* The parallel compilation service (lib/par): the work-stealing domain
   pool's batch semantics, the corpus-wide determinism pin (parallel and
   sequential runs must render byte-identical output and merge to the same
   metrics), the content-addressed result cache's canonicalization and its
   two tiers, and the two-domain regression for the domain-local state the
   parallel audit converted (Rules.Engine's compiled tables, Infer's fault
   hook). *)

let func_of_src = Helpers.func_of_src

(* ------------------------------------------------------------------ *)
(* Pool: batch semantics.                                              *)

let test_pool_map_order () =
  Par.Pool.with_pool ~domains:3 (fun pool ->
      let input = Array.init 100 (fun i -> i) in
      let out = Par.Pool.map pool (fun i -> (i * i) + 1) input in
      Alcotest.(check (array int))
        "results in input order"
        (Array.map (fun i -> (i * i) + 1) input)
        out;
      Alcotest.(check (array int)) "empty batch" [||] (Par.Pool.map pool (fun i -> i) [||]))

let test_pool_reuse () =
  (* One pool, several batches: the generation protocol must rearm. *)
  Par.Pool.with_pool ~domains:2 (fun pool ->
      for round = 1 to 5 do
        let out = Par.Pool.map pool (fun i -> i + round) (Array.init 17 (fun i -> i)) in
        Alcotest.(check int) "last element" (16 + round) out.(16)
      done)

let test_pool_single_domain_fallback () =
  Par.Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "size" 1 (Par.Pool.size pool);
      let out = Par.Pool.map pool string_of_int (Array.init 9 (fun i -> i)) in
      Alcotest.(check string) "sequential fallback" "8" out.(8))

exception Boom of int

let test_pool_exception_leftmost () =
  Par.Pool.with_pool ~domains:3 (fun pool ->
      let f i = if i mod 4 = 2 then raise (Boom i) else i in
      (* Failures at 2, 6, 10, ...: the leftmost (index 2) must be the one
         re-raised, whatever order the workers hit them in. *)
      match Par.Pool.map pool f (Array.init 12 (fun i -> i)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "leftmost failure wins" 2 i)

let test_pool_invalid_arguments () =
  Alcotest.check_raises "domains = 0" (Invalid_argument "Par.Pool.create: domains must be >= 1")
    (fun () -> ignore (Par.Pool.create ~domains:0 ()));
  let pool = Par.Pool.create ~domains:2 () in
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Par.Pool.map: pool is shut down") (fun () ->
      ignore (Par.Pool.map pool (fun i -> i) [| 1 |]))

(* ------------------------------------------------------------------ *)
(* Determinism: the whole (scaled) ten-benchmark corpus, optimized end to
   end sequentially and through a multi-domain pool, must produce
   byte-identical rendered routines and identical merged metrics. This is
   the library-level half of the driver's `--jobs` determinism contract. *)

let corpus_routines () =
  Workload.Suite.all ~scale:0.2 ()
  |> List.concat_map (fun (_, fs) -> fs)
  |> Array.of_list

let optimize_and_render f =
  let o = Obs.create () in
  let g = Helpers.optimize Pgvn.Config.full f in
  Obs.add o "par.test.routines" 1;
  Obs.add o "par.test.instrs" (Ir.Func.num_instrs g);
  (Ir.Printer.to_string g, o)

let test_corpus_determinism () =
  let routines = corpus_routines () in
  Alcotest.(check bool) "corpus is non-trivial" true (Array.length routines > 50);
  let seq = Array.map optimize_and_render routines in
  let par =
    Par.Pool.with_pool ~domains:3 (fun pool -> Par.Pool.map pool optimize_and_render routines)
  in
  Array.iteri
    (fun i (text, _) ->
      let ptext, _ = par.(i) in
      if not (String.equal text ptext) then
        Alcotest.failf "routine %d: parallel output diverges from sequential" i)
    seq;
  (* Per-routine contexts merged in input order: the aggregate report must
     not depend on which domain ran which routine. *)
  let merged results =
    let dst = Obs.create () in
    Array.iter (fun (_, o) -> Obs.merge_into ~dst o) results;
    Fmt.str "%a" Obs.pp_metrics dst
  in
  Alcotest.(check string) "merged metrics reports identical" (merged seq) (merged par)

(* ------------------------------------------------------------------ *)
(* Two-domain pipeline regression: the state the parallelism audit made
   domain-local — Rules.Engine's shared compiled tables and the rule fire
   counters behind Driver.run's per-run deltas — must give each domain the
   same answers it gives a sequential run. Raw Domain.spawn (no pool) so
   the test pins the library invariant, not the pool's scheduling. *)

let test_two_domain_pipeline_matches_sequential () =
  let srcs =
    [|
      "routine F(A, B) { X = A + B; Y = B + A; if (X == Y) { R = X * 2; } else { R = 0; } \
       return R; }";
      "routine G(N) { S = 0; I = 0; while (I < N) { S = S + I; I = I + 1; } return S; }";
    |]
  in
  let run src = Ir.Printer.to_string (Helpers.optimize Pgvn.Config.full (func_of_src src)) in
  let expected = Array.map run srcs in
  let d0 = Domain.spawn (fun () -> run srcs.(0)) in
  let d1 = Domain.spawn (fun () -> run srcs.(1)) in
  Alcotest.(check string) "domain 0 matches sequential" expected.(0) (Domain.join d0);
  Alcotest.(check string) "domain 1 matches sequential" expected.(1) (Domain.join d1)

(* ------------------------------------------------------------------ *)
(* Ccache: canonicalization.                                           *)

(* A diamond built twice with permuted block creation order (and permuted
   instruction-id allocation): the canonical form must erase the layout. *)
let diamond ~permuted =
  let b = Ir.Builder.create ~name:"d" ~nparams:1 in
  let entry = Ir.Builder.add_block b in
  let bt, bf, join =
    if permuted then
      let join = Ir.Builder.add_block b in
      let bf = Ir.Builder.add_block b in
      let bt = Ir.Builder.add_block b in
      (bt, bf, join)
    else
      let bt = Ir.Builder.add_block b in
      let bf = Ir.Builder.add_block b in
      let join = Ir.Builder.add_block b in
      (bt, bf, join)
  in
  let p = Ir.Builder.param b entry 0 in
  let z = Ir.Builder.const b entry 0 in
  let c = Ir.Builder.cmp b entry Ir.Types.Lt p z in
  let et, ef = Ir.Builder.branch b entry c ~ift:bt ~iff:bf in
  let vt = Ir.Builder.const b bt 1 in
  let ej_t = Ir.Builder.jump b bt ~dst:join in
  let vf = Ir.Builder.const b bf 2 in
  let ej_f = Ir.Builder.jump b bf ~dst:join in
  ignore et;
  ignore ef;
  let phi = Ir.Builder.phi b join in
  Ir.Builder.set_phi_arg b ~phi ~edge:ej_t vt;
  Ir.Builder.set_phi_arg b ~phi ~edge:ej_f vf;
  Ir.Builder.ret b join phi;
  Ir.Builder.finish b

let test_ccache_canonical_block_permutation () =
  let a = diamond ~permuted:false and b = diamond ~permuted:true in
  Alcotest.(check string)
    "block layout erased" (Par.Ccache.canonical_form a) (Par.Ccache.canonical_form b);
  let ka = Par.Ccache.key_of a and kb = Par.Ccache.key_of b in
  Alcotest.(check int) "hashes agree" ka.Par.Ccache.khash kb.Par.Ccache.khash

let test_ccache_canonical_distinguishes () =
  let f = func_of_src "routine F(A) { return A + 1; }" in
  let g = func_of_src "routine F(A) { return A + 2; }" in
  Alcotest.(check bool) "different bodies differ" false
    (String.equal (Par.Ccache.canonical_form f) (Par.Ccache.canonical_form g));
  (* The fingerprint folds configuration into the key: same routine,
     different flags, different key. *)
  let k1 = Par.Ccache.key_of ~fingerprint:"flags=a" f in
  let k2 = Par.Ccache.key_of ~fingerprint:"flags=b" f in
  Alcotest.(check bool) "fingerprint separates keys" false
    (String.equal k1.Par.Ccache.kcanon k2.Par.Ccache.kcanon)

(* ------------------------------------------------------------------ *)
(* Ccache: in-memory tier.                                             *)

let key_of_src src = Par.Ccache.key_of (func_of_src src)

let test_ccache_hit_miss_evict () =
  let c = Par.Ccache.create ~capacity:2 () in
  let k1 = key_of_src "routine F(A) { return A + 1; }" in
  let k2 = key_of_src "routine F(A) { return A + 2; }" in
  let k3 = key_of_src "routine F(A) { return A + 3; }" in
  Alcotest.(check (option string)) "cold miss" None (Par.Ccache.find c k1);
  Par.Ccache.add c k1 "one";
  Par.Ccache.add c k2 "two";
  Alcotest.(check (option string)) "hit k1" (Some "one") (Par.Ccache.find c k1);
  Alcotest.(check (option string)) "hit k2" (Some "two") (Par.Ccache.find c k2);
  (* Overwrite in place must not evict. *)
  Par.Ccache.add c k1 "one'";
  Alcotest.(check (option string)) "overwrite" (Some "one'") (Par.Ccache.find c k1);
  (* Third distinct key at capacity 2: the oldest entry (k1) goes. *)
  Par.Ccache.add c k3 "three";
  Alcotest.(check (option string)) "k1 evicted oldest-first" None (Par.Ccache.find c k1);
  Alcotest.(check (option string)) "k3 resident" (Some "three") (Par.Ccache.find c k3);
  let s = Par.Ccache.stats c in
  Alcotest.(check int) "entries" 2 s.Par.Ccache.entries;
  Alcotest.(check int) "hits" 4 s.Par.Ccache.hits;
  Alcotest.(check int) "misses" 2 s.Par.Ccache.misses;
  Alcotest.(check int) "evictions" 1 s.Par.Ccache.evictions

(* Same routine, different flag fingerprints (the gvnopt --gcm toggle is
   one): a result cached under one fingerprint must never answer a lookup
   under another, and each fingerprint's entry must come back verbatim. *)
let test_ccache_fingerprint_hit_miss () =
  let c = Par.Ccache.create () in
  let f = func_of_src "routine F(A) { return A * 7; }" in
  let k_off = Par.Ccache.key_of ~fingerprint:"gcm=off" f in
  let k_on = Par.Ccache.key_of ~fingerprint:"gcm=on" f in
  Par.Ccache.add c k_off "no motion";
  Alcotest.(check (option string)) "other-flags lookup misses" None (Par.Ccache.find c k_on);
  Par.Ccache.add c k_on "hoisted";
  Alcotest.(check (option string)) "each fingerprint keeps its own entry"
    (Some "no motion") (Par.Ccache.find c k_off);
  Alcotest.(check (option string)) "same-flags lookup hits" (Some "hoisted")
    (Par.Ccache.find c k_on);
  let s = Par.Ccache.stats c in
  Alcotest.(check int) "one cross-flag miss" 1 s.Par.Ccache.misses;
  Alcotest.(check int) "two same-flag hits" 2 s.Par.Ccache.hits

let test_ccache_collision_verifies () =
  let c = Par.Ccache.create () in
  let k = key_of_src "routine F(A) { return A * 3; }" in
  Par.Ccache.add c k "real";
  (* A forged key with the same structural hash but a different canonical
     form models a hash collision: verify-on-hit must answer a miss, never
     the colliding entry's result. *)
  let forged = { k with Par.Ccache.kcanon = k.Par.Ccache.kcanon ^ "tampered" } in
  Alcotest.(check (option string)) "collision is a miss" None (Par.Ccache.find c forged);
  Alcotest.(check (option string)) "real key still hits" (Some "real") (Par.Ccache.find c k)

let test_ccache_concurrent_access () =
  (* Two domains hammering one cache: no torn entries, every hit verified. *)
  let c = Par.Ccache.create ~capacity:64 () in
  let keys =
    Array.init 8 (fun i ->
        key_of_src (Printf.sprintf "routine F(A) { return A + %d; }" i))
  in
  let worker () =
    for round = 0 to 499 do
      let i = round mod 8 in
      (match Par.Ccache.find c keys.(i) with
      | Some v -> if v <> string_of_int i then Alcotest.fail "torn cache value"
      | None -> ());
      Par.Ccache.add c keys.(i) (string_of_int i)
    done
  in
  let d = Domain.spawn worker in
  worker ();
  Domain.join d;
  Alcotest.(check int) "all keys resident" 8 (Par.Ccache.stats c).Par.Ccache.entries

(* ------------------------------------------------------------------ *)
(* Ccache: persisted tier.                                             *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("pgvn_ccache_" ^ name)

let test_ccache_persist_round_trip () =
  let path = tmp "roundtrip.bin" in
  let c = Par.Ccache.create () in
  let k1 = key_of_src "routine F(A) { return A + 1; }" in
  let k2 = key_of_src "routine F(A, B) { return A * B; }" in
  Par.Ccache.add c k1 "r1\nmultiline body";
  Par.Ccache.add c k2 "";
  (* empty value survives *)
  Par.Ccache.save c path;
  let c' = Par.Ccache.load path in
  Alcotest.(check int) "entries restored" 2 (Par.Ccache.stats c').Par.Ccache.entries;
  Alcotest.(check (option string)) "value restored" (Some "r1\nmultiline body")
    (Par.Ccache.find c' k1);
  Alcotest.(check (option string)) "empty value restored" (Some "") (Par.Ccache.find c' k2);
  Sys.remove path

let test_ccache_corrupt_loads_cold () =
  let cold_from contents name =
    let path = tmp name in
    let oc = open_out_bin path in
    output_string oc contents;
    close_out oc;
    let c = Par.Ccache.load path in
    Sys.remove path;
    (Par.Ccache.stats c).Par.Ccache.entries
  in
  Alcotest.(check int) "missing file" 0
    (Par.Ccache.stats (Par.Ccache.load (tmp "nonexistent.bin"))).Par.Ccache.entries;
  Alcotest.(check int) "garbage" 0 (cold_from "not a cache file at all" "garbage.bin");
  Alcotest.(check int) "wrong version" 0 (cold_from "pgvn-ccache/99\n0\n" "badver.bin");
  Alcotest.(check int) "bad count" 0 (cold_from "pgvn-ccache/1\nfive\n" "badcount.bin");
  (* A valid prefix then truncation mid-entry: still a cold cache. *)
  let c = Par.Ccache.create () in
  Par.Ccache.add c (key_of_src "routine F(A) { return A; }") "v";
  let path = tmp "trunc.bin" in
  Par.Ccache.save c path;
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full - 3));
  close_out oc;
  let c' = Par.Ccache.load path in
  Sys.remove path;
  Alcotest.(check int) "truncated entry" 0 (Par.Ccache.stats c').Par.Ccache.entries

let suite =
  [
    Alcotest.test_case "pool maps in input order" `Quick test_pool_map_order;
    Alcotest.test_case "pool runs repeated batches" `Quick test_pool_reuse;
    Alcotest.test_case "single-domain pool degrades to Array.map" `Quick
      test_pool_single_domain_fallback;
    Alcotest.test_case "leftmost task exception is re-raised" `Quick test_pool_exception_leftmost;
    Alcotest.test_case "pool argument and lifecycle errors" `Quick test_pool_invalid_arguments;
    Alcotest.test_case "parallel == sequential over the corpus" `Slow test_corpus_determinism;
    Alcotest.test_case "two raw domains match the sequential pipeline" `Quick
      test_two_domain_pipeline_matches_sequential;
    Alcotest.test_case "canonical form erases block layout" `Quick
      test_ccache_canonical_block_permutation;
    Alcotest.test_case "canonical form keeps semantic differences" `Quick
      test_ccache_canonical_distinguishes;
    Alcotest.test_case "cache hit, miss, overwrite and eviction" `Quick test_ccache_hit_miss_evict;
    Alcotest.test_case "flag fingerprints never cross-serve" `Quick
      test_ccache_fingerprint_hit_miss;
    Alcotest.test_case "hash collision verifies to a miss" `Quick test_ccache_collision_verifies;
    Alcotest.test_case "two domains share one cache safely" `Quick test_ccache_concurrent_access;
    Alcotest.test_case "persisted tier round-trips" `Quick test_ccache_persist_round_trip;
    Alcotest.test_case "corrupted persisted tier loads cold" `Quick test_ccache_corrupt_loads_cold;
  ]
